#include "faults/fault_plan.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>

#include "simcore/rng.h"
#include "simcore/status.h"

namespace numaio::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDegrade:
      return "link-degrade";
    case FaultKind::kLinkFlap:
      return "link-flap";
    case FaultKind::kMcThrottle:
      return "mc-throttle";
    case FaultKind::kDeviceStall:
      return "device-stall";
    case FaultKind::kIrqStorm:
      return "irq-storm";
    case FaultKind::kMeasureNoise:
      return "measure-noise";
    case FaultKind::kHostCrash:
      return "host-crash";
    case FaultKind::kHostHang:
      return "host-hang";
    case FaultKind::kHostRecover:
      return "host-recover";
  }
  return "?";
}

namespace {

[[noreturn]] void bad(std::size_t index, const std::string& what) {
  throw std::invalid_argument("fault event " + std::to_string(index) + ": " +
                              what);
}

}  // namespace

void FaultPlan::validate(int num_nodes, int num_devices, int num_hosts) const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& e = events_[i];
    if (e.start < 0.0 || !std::isfinite(e.start)) bad(i, "negative start");
    if (e.duration <= 0.0 || !std::isfinite(e.duration)) {
      bad(i, "non-positive duration");
    }
    switch (e.kind) {
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkFlap:
        if (e.src < 0 || e.src >= num_nodes || e.dst < 0 ||
            e.dst >= num_nodes || e.src == e.dst) {
          bad(i, "link fault needs a valid directed node pair");
        }
        if (e.kind == FaultKind::kLinkFlap && e.flaps < 1) {
          bad(i, "flap count must be >= 1");
        }
        break;
      case FaultKind::kMcThrottle:
      case FaultKind::kIrqStorm:
        if (e.node < 0 || e.node >= num_nodes) bad(i, "node out of range");
        break;
      case FaultKind::kDeviceStall:
        if (e.device < 0 || e.device >= num_devices) {
          bad(i, "device index out of range");
        }
        break;
      case FaultKind::kMeasureNoise:
        break;
      case FaultKind::kHostCrash:
      case FaultKind::kHostHang:
      case FaultKind::kHostRecover:
        if (e.host < 0 || (num_hosts >= 0 && e.host >= num_hosts)) {
          bad(i, "host index out of range");
        }
        break;
    }
    if (e.kind == FaultKind::kMeasureNoise) {
      if (e.severity < 0.0) bad(i, "noise amplification must be >= 0");
    } else if (e.severity < 0.0 || e.severity > 1.0) {
      bad(i, "severity must be in [0, 1]");
    }
  }
}

FaultPlan FaultPlan::random(std::uint64_t seed, int num_nodes,
                            int num_devices, const RandomPlanConfig& config) {
  RandomPlanConfig merged = config;
  merged.seed = seed;
  merged.num_nodes = num_nodes;
  merged.num_devices = num_devices;
  return random(merged);
}

FaultPlan FaultPlan::random(const RandomPlanConfig& config) {
  const int num_nodes = config.num_nodes;
  const int num_devices = config.num_devices;
  if (num_nodes < 2) {
    throw std::invalid_argument("random fault plan needs >= 2 nodes");
  }
  sim::Rng rng = sim::Rng(config.seed).fork(0x6661756c74u);  // "fault"
  // The allowed-kind table reproduces the historical draw bit for bit:
  // with num_hosts == 0 it is exactly the old `below(5 or 6)` + remap, so
  // pre-fleet seeds keep producing byte-identical plans.
  FaultKind kinds[9];
  int num_kinds = 0;
  kinds[num_kinds++] = FaultKind::kLinkDegrade;
  kinds[num_kinds++] = FaultKind::kLinkFlap;
  kinds[num_kinds++] = FaultKind::kMcThrottle;
  if (num_devices > 0) kinds[num_kinds++] = FaultKind::kDeviceStall;
  kinds[num_kinds++] = FaultKind::kIrqStorm;
  kinds[num_kinds++] = FaultKind::kMeasureNoise;
  if (config.num_hosts > 0) {
    kinds[num_kinds++] = FaultKind::kHostCrash;
    kinds[num_kinds++] = FaultKind::kHostHang;
    kinds[num_kinds++] = FaultKind::kHostRecover;
  }
  FaultPlan plan;
  for (int i = 0; i < config.num_events; ++i) {
    FaultEvent e;
    e.kind = kinds[rng.below(static_cast<std::uint64_t>(num_kinds))];
    e.start = rng.uniform(0.0, config.horizon);
    e.duration = rng.uniform(config.min_duration, config.max_duration);
    e.severity = rng.uniform(config.min_severity, config.max_severity);
    switch (e.kind) {
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkFlap: {
        e.src = static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(num_nodes)));
        e.dst = static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(num_nodes - 1)));
        if (e.dst >= e.src) ++e.dst;
        e.flaps = 1 + static_cast<int>(rng.below(
                          static_cast<std::uint64_t>(config.max_flaps)));
        break;
      }
      case FaultKind::kMcThrottle:
      case FaultKind::kIrqStorm:
        e.node = static_cast<NodeId>(
            rng.below(static_cast<std::uint64_t>(num_nodes)));
        break;
      case FaultKind::kDeviceStall:
        e.device = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(num_devices)));
        break;
      case FaultKind::kMeasureNoise:
        e.severity =
            rng.uniform(1.0, config.max_noise_amplification) - 1.0;
        break;
      case FaultKind::kHostCrash:
      case FaultKind::kHostHang:
      case FaultKind::kHostRecover:
        e.host = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(config.num_hosts)));
        break;
    }
    plan.add(e);
  }
  plan.validate(num_nodes, num_devices,
                config.num_hosts > 0 ? config.num_hosts : -1);
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  char buf[160];
  for (const FaultEvent& e : events_) {
    switch (e.kind) {
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkFlap:
        std::snprintf(buf, sizeof buf,
                      "%-13s %d>%d start %.3fs dur %.3fs sev %.2f flaps %d\n",
                      faults::to_string(e.kind), e.src, e.dst, e.start / 1e9,
                      e.duration / 1e9, e.severity,
                      e.kind == FaultKind::kLinkFlap ? e.flaps : 0);
        break;
      case FaultKind::kMcThrottle:
      case FaultKind::kIrqStorm:
        std::snprintf(buf, sizeof buf,
                      "%-13s node %d start %.3fs dur %.3fs sev %.2f\n",
                      faults::to_string(e.kind), e.node, e.start / 1e9,
                      e.duration / 1e9, e.severity);
        break;
      case FaultKind::kDeviceStall:
        std::snprintf(buf, sizeof buf,
                      "%-13s device %d start %.3fs dur %.3fs\n",
                      faults::to_string(e.kind), e.device, e.start / 1e9,
                      e.duration / 1e9);
        break;
      case FaultKind::kMeasureNoise:
        std::snprintf(buf, sizeof buf,
                      "%-13s start %.3fs dur %.3fs amp %.2fx\n",
                      faults::to_string(e.kind), e.start / 1e9,
                      e.duration / 1e9, 1.0 + e.severity);
        break;
      case FaultKind::kHostCrash:
      case FaultKind::kHostHang:
        std::snprintf(buf, sizeof buf,
                      "%-13s host %d start %.3fs dur %.3fs\n",
                      faults::to_string(e.kind), e.host, e.start / 1e9,
                      e.duration / 1e9);
        break;
      case FaultKind::kHostRecover:
        std::snprintf(buf, sizeof buf,
                      "%-13s host %d start %.3fs dur %.3fs sev %.2f\n",
                      faults::to_string(e.kind), e.host, e.start / 1e9,
                      e.duration / 1e9, e.severity);
        break;
    }
    out += buf;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Plan file format (docs/FORMATS.md §6).

namespace {

[[noreturn]] void parse_fail(int line, const std::string& what) {
  throw StatusError(StatusCode::kParse,
                    "fault plan line " + std::to_string(line) + ": " + what);
}

bool parse_kind(const std::string& name, FaultKind* out) {
  static constexpr FaultKind kAll[] = {
      FaultKind::kLinkDegrade, FaultKind::kLinkFlap,
      FaultKind::kMcThrottle,  FaultKind::kDeviceStall,
      FaultKind::kIrqStorm,    FaultKind::kMeasureNoise,
      FaultKind::kHostCrash,   FaultKind::kHostHang,
      FaultKind::kHostRecover,
  };
  for (FaultKind k : kAll) {
    if (name == to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

int parse_int(const std::string& value, int line, const std::string& key) {
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size()) {
    parse_fail(line, "bad integer for '" + key + "': '" + value + "'");
  }
  return static_cast<int>(v);
}

double parse_double(const std::string& value, int line,
                    const std::string& key) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() ||
      !std::isfinite(v)) {
    parse_fail(line, "bad number for '" + key + "': '" + value + "'");
  }
  return v;
}

/// A time value with an optional s/ms/us/ns suffix; bare numbers are
/// seconds. Returns nanoseconds.
double parse_time(const std::string& value, int line, const std::string& key) {
  double scale = 1e9;  // bare == seconds
  std::string digits = value;
  auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::string(suffix).size();
    return digits.size() > n &&
           digits.compare(digits.size() - n, n, suffix) == 0;
  };
  if (ends_with("ns")) {
    scale = 1.0;
    digits.resize(digits.size() - 2);
  } else if (ends_with("us")) {
    scale = 1e3;
    digits.resize(digits.size() - 2);
  } else if (ends_with("ms")) {
    scale = 1e6;
    digits.resize(digits.size() - 2);
  } else if (ends_with("s")) {
    scale = 1e9;
    digits.resize(digits.size() - 1);
  }
  return parse_double(digits, line, key) * scale;
}

/// Shortest decimal rendering that strtod parses back to the same double.
std::string round_trip_double(double v) {
  char buf[40];
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& text) {
  FaultPlan plan;
  std::size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);

    // Tokenize on whitespace.
    std::vector<std::string> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && std::isspace(static_cast<unsigned char>(
                                    line[i]))) {
        ++i;
      }
      std::size_t start = i;
      while (i < line.size() && !std::isspace(static_cast<unsigned char>(
                                     line[i]))) {
        ++i;
      }
      if (i > start) tokens.push_back(line.substr(start, i - start));
    }
    if (tokens.empty()) continue;

    FaultEvent e;
    if (!parse_kind(tokens[0], &e.kind)) {
      parse_fail(line_no, "unknown fault kind '" + tokens[0] + "'");
    }
    std::map<std::string, std::string> kv;
    for (std::size_t t = 1; t < tokens.size(); ++t) {
      const std::size_t eq = tokens[t].find('=');
      if (eq == std::string::npos || eq == 0) {
        parse_fail(line_no, "expected key=value, got '" + tokens[t] + "'");
      }
      const std::string key = tokens[t].substr(0, eq);
      if (!kv.emplace(key, tokens[t].substr(eq + 1)).second) {
        parse_fail(line_no, "duplicate key '" + key + "'");
      }
    }
    for (const auto& [key, value] : kv) {
      if (key == "start") {
        e.start = parse_time(value, line_no, key);
      } else if (key == "dur") {
        e.duration = parse_time(value, line_no, key);
      } else if (key == "src") {
        e.src = parse_int(value, line_no, key);
      } else if (key == "dst") {
        e.dst = parse_int(value, line_no, key);
      } else if (key == "node") {
        e.node = parse_int(value, line_no, key);
      } else if (key == "device") {
        e.device = parse_int(value, line_no, key);
      } else if (key == "host") {
        e.host = parse_int(value, line_no, key);
      } else if (key == "sev") {
        e.severity = parse_double(value, line_no, key);
      } else if (key == "flaps") {
        e.flaps = parse_int(value, line_no, key);
      } else {
        parse_fail(line_no, "unknown key '" + key + "'");
      }
    }
    auto require = [&](const char* key) {
      if (!kv.count(key)) {
        parse_fail(line_no, std::string(to_string(e.kind)) +
                                " needs key '" + key + "'");
      }
    };
    require("start");
    require("dur");
    switch (e.kind) {
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkFlap:
        require("src");
        require("dst");
        break;
      case FaultKind::kMcThrottle:
      case FaultKind::kIrqStorm:
        require("node");
        break;
      case FaultKind::kDeviceStall:
        require("device");
        break;
      case FaultKind::kMeasureNoise:
        break;
      case FaultKind::kHostCrash:
      case FaultKind::kHostHang:
      case FaultKind::kHostRecover:
        require("host");
        break;
    }
    plan.add(e);
  }
  return plan;
}

std::string render_fault_plan(const FaultPlan& plan) {
  std::string out;
  for (const FaultEvent& e : plan.events()) {
    out += to_string(e.kind);
    auto emit_int = [&](const char* key, int v) {
      out += ' ';
      out += key;
      out += '=';
      out += std::to_string(v);
    };
    auto emit_time = [&](const char* key, double ns) {
      out += ' ';
      out += key;
      out += '=';
      out += round_trip_double(ns);
      out += "ns";
    };
    auto emit_double = [&](const char* key, double v) {
      out += ' ';
      out += key;
      out += '=';
      out += round_trip_double(v);
    };
    switch (e.kind) {
      case FaultKind::kLinkDegrade:
        emit_int("src", e.src);
        emit_int("dst", e.dst);
        break;
      case FaultKind::kLinkFlap:
        emit_int("src", e.src);
        emit_int("dst", e.dst);
        emit_int("flaps", e.flaps);
        break;
      case FaultKind::kMcThrottle:
      case FaultKind::kIrqStorm:
        emit_int("node", e.node);
        break;
      case FaultKind::kDeviceStall:
        emit_int("device", e.device);
        break;
      case FaultKind::kMeasureNoise:
        break;
      case FaultKind::kHostCrash:
      case FaultKind::kHostHang:
      case FaultKind::kHostRecover:
        emit_int("host", e.host);
        break;
    }
    emit_time("start", e.start);
    emit_time("dur", e.duration);
    const bool uses_severity = e.kind != FaultKind::kDeviceStall &&
                               e.kind != FaultKind::kHostCrash &&
                               e.kind != FaultKind::kHostHang;
    if (uses_severity) emit_double("sev", e.severity);
    out += '\n';
  }
  return out;
}

}  // namespace numaio::faults
