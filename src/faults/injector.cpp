#include "faults/injector.h"

#include <algorithm>
#include <cassert>
#include <climits>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <utility>

namespace numaio::faults {

namespace {
/// Capacity scale of a stalled device resource: effectively dark, but the
/// max-min solve stays finite; control events bound the window in time.
constexpr double kStallScale = 1e-9;
}  // namespace

FaultInjector::FaultInjector(fabric::Machine& machine, FaultPlan plan)
    : machine_(machine), plan_(std::move(plan)) {
  // Device indices are validated lazily (devices register after
  // construction); everything else is checked now.
  plan_.validate(machine_.num_nodes(), INT_MAX);

  const auto& events = plan_.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (e.kind == FaultKind::kLinkFlap) {
      const sim::Ns slice = e.duration / (2.0 * e.flaps);
      for (int k = 0; k < e.flaps; ++k) {
        const sim::Ns down = e.start + 2.0 * k * slice;
        transitions_.push_back(Transition{down, i, true, k + 1});
        transitions_.push_back(Transition{down + slice, i, false, k + 1});
      }
    } else {
      transitions_.push_back(Transition{e.start, i, true, 0});
      transitions_.push_back(Transition{e.start + e.duration, i, false, 0});
    }
  }
  std::sort(transitions_.begin(), transitions_.end(),
            [](const Transition& a, const Transition& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.event != b.event) return a.event < b.event;
              return a.on < b.on;  // releases before onsets at a tie
            });
}

FaultInjector::~FaultInjector() { restore(); }

int FaultInjector::register_device(std::string name, NodeId attach_node,
                                   std::vector<sim::ResourceId> resources) {
  Device dev;
  dev.name = std::move(name);
  dev.attach_node = attach_node;
  dev.healthy_capacity.reserve(resources.size());
  for (sim::ResourceId r : resources) {
    dev.healthy_capacity.push_back(machine_.solver().capacity(r));
  }
  dev.resources = std::move(resources);
  devices_.push_back(std::move(dev));
  stalled_applied_.push_back(false);
  return static_cast<int>(devices_.size()) - 1;
}

int FaultInjector::device_index(std::string_view name) const {
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (devices_[d].name == name) return static_cast<int>(d);
  }
  return -1;
}

void FaultInjector::set_stall_handler(StallHandler handler) {
  stall_handler_ = std::move(handler);
}

void FaultInjector::set_transition_handler(TransitionHandler handler) {
  transition_handler_ = std::move(handler);
}

void FaultInjector::set_observer(obs::Context* obs) {
  obs_ = obs;
  if (obs_ == nullptr) return;
  m_transitions_ = obs_->metrics.counter("faults.transitions");
}

bool FaultInjector::event_active(const FaultEvent& e, sim::Ns t) const {
  if (t < e.start || t >= e.start + e.duration) return false;
  if (e.kind != FaultKind::kLinkFlap) return true;
  // Dead windows are the even slices of the flap interval.
  const sim::Ns slice = e.duration / (2.0 * e.flaps);
  const double offset = (t - e.start) / slice;
  return (static_cast<long long>(offset) % 2) == 0;
}

double FaultInjector::event_factor(const FaultEvent& e, sim::Ns t) const {
  if (!event_active(e, t)) return 1.0;
  return std::max(1.0 - e.severity, 0.0);
}

void FaultInjector::apply_state_at(sim::Ns t) {
  const auto& events = plan_.events();

  // Recompute the full multiplicative state from scratch; with the small
  // event counts of any realistic plan this is cheaper than being clever
  // and can never leak a scale when overlapping windows release.
  for (const FaultEvent& anchor : events) {
    switch (anchor.kind) {
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkFlap: {
        double scale = 1.0;
        for (const FaultEvent& e : events) {
          if ((e.kind == FaultKind::kLinkDegrade ||
               e.kind == FaultKind::kLinkFlap) &&
              e.src == anchor.src && e.dst == anchor.dst) {
            scale *= event_factor(e, t);
          }
        }
        machine_.set_fabric_scale(anchor.src, anchor.dst, scale);
        break;
      }
      case FaultKind::kMcThrottle: {
        double scale = 1.0;
        for (const FaultEvent& e : events) {
          if (e.kind == FaultKind::kMcThrottle && e.node == anchor.node) {
            scale *= event_factor(e, t);
          }
        }
        machine_.set_mc_scale(anchor.node, scale);
        break;
      }
      case FaultKind::kIrqStorm: {
        double scale = 1.0;
        for (const FaultEvent& e : events) {
          if (e.kind == FaultKind::kIrqStorm && e.node == anchor.node) {
            scale *= event_factor(e, t);
          }
        }
        machine_.set_cpu_scale(anchor.node, scale);
        break;
      }
      case FaultKind::kDeviceStall: {
        if (anchor.device >= static_cast<int>(devices_.size())) {
          throw std::invalid_argument(
              "fault plan stalls device " + std::to_string(anchor.device) +
              " but only " + std::to_string(devices_.size()) +
              " devices are registered");
        }
        const bool stalled = device_stalled(anchor.device, t);
        const auto d = static_cast<std::size_t>(anchor.device);
        if (stalled != stalled_applied_[d]) {
          const Device& dev = devices_[d];
          for (std::size_t r = 0; r < dev.resources.size(); ++r) {
            machine_.solver().set_capacity(
                dev.resources[r],
                dev.healthy_capacity[r] * (stalled ? kStallScale : 1.0));
          }
          stalled_applied_[d] = stalled;
        }
        break;
      }
      case FaultKind::kMeasureNoise:
        break;  // no capacity effect; consumers read noise_amplification()
      case FaultKind::kHostCrash:
      case FaultKind::kHostHang:
      case FaultKind::kHostRecover:
        break;  // no machine effect; the fleet layer reads the host queries
    }
  }
}

void FaultInjector::apply_transition(std::size_t index) {
  assert(index < transitions_.size());
  const Transition& tr = transitions_[index];
  const FaultEvent& e = plan_.events()[tr.event];
  apply_state_at(tr.at);

  char buf[192];
  switch (e.kind) {
    case FaultKind::kLinkDegrade:
      std::snprintf(buf, sizeof buf, "t=%14.6fs %-13s %d>%d %s (scale %.2f)",
                    tr.at / 1e9, to_string(e.kind), e.src, e.dst,
                    tr.on ? "on" : "off", tr.on ? 1.0 - e.severity : 1.0);
      break;
    case FaultKind::kLinkFlap:
      std::snprintf(buf, sizeof buf, "t=%14.6fs %-13s %d>%d %s (%d/%d)",
                    tr.at / 1e9, to_string(e.kind), e.src, e.dst,
                    tr.on ? "down" : "up", tr.flap, e.flaps);
      break;
    case FaultKind::kMcThrottle:
    case FaultKind::kIrqStorm:
      std::snprintf(buf, sizeof buf, "t=%14.6fs %-13s node %d %s (scale %.2f)",
                    tr.at / 1e9, to_string(e.kind), e.node,
                    tr.on ? "on" : "off", tr.on ? 1.0 - e.severity : 1.0);
      break;
    case FaultKind::kDeviceStall: {
      const char* name =
          e.device < static_cast<int>(devices_.size())
              ? devices_[static_cast<std::size_t>(e.device)].name.c_str()
              : "?";
      std::snprintf(buf, sizeof buf, "t=%14.6fs %-13s device %d (%s) %s",
                    tr.at / 1e9, to_string(e.kind), e.device, name,
                    tr.on ? "on" : "off");
      break;
    }
    case FaultKind::kMeasureNoise:
      std::snprintf(buf, sizeof buf, "t=%14.6fs %-13s %s (amp %.2fx)",
                    tr.at / 1e9, to_string(e.kind), tr.on ? "on" : "off",
                    tr.on ? 1.0 + e.severity : 1.0);
      break;
    case FaultKind::kHostCrash:
    case FaultKind::kHostHang:
      std::snprintf(buf, sizeof buf, "t=%14.6fs %-13s host %d %s",
                    tr.at / 1e9, to_string(e.kind), e.host,
                    tr.on ? "on" : "off");
      break;
    case FaultKind::kHostRecover:
      std::snprintf(buf, sizeof buf, "t=%14.6fs %-13s host %d %s (scale %.2f)",
                    tr.at / 1e9, to_string(e.kind), e.host,
                    tr.on ? "on" : "off", tr.on ? 1.0 - e.severity : 1.0);
      break;
  }
  trace_.emplace_back(buf);

  if (obs_ != nullptr) {
    obs_->metrics.add(m_transitions_);
    if (obs_->trace.enabled()) {
      obs::EventFields fields;
      fields.t_sim = tr.at;
      std::string detail = to_string(e.kind);
      switch (e.kind) {
        case FaultKind::kLinkDegrade:
        case FaultKind::kLinkFlap:
          fields.node_a = e.src;
          fields.node_b = e.dst;
          break;
        case FaultKind::kMcThrottle:
        case FaultKind::kIrqStorm:
          fields.node_a = e.node;
          break;
        case FaultKind::kDeviceStall:
          if (e.device < static_cast<int>(devices_.size())) {
            const Device& dev = devices_[static_cast<std::size_t>(e.device)];
            fields.node_a = dev.attach_node;
            detail += " " + dev.name;
          }
          break;
        case FaultKind::kMeasureNoise:
          break;
        case FaultKind::kHostCrash:
        case FaultKind::kHostHang:
        case FaultKind::kHostRecover:
          fields.node_a = e.host;
          break;
      }
      fields.detail = detail;
      last_transition_event_ = obs_->trace.event(
          "fault.transition", 0, 0, tr.on ? "on" : "off", fields);
    }
  }

  if (tr.on && e.kind == FaultKind::kDeviceStall && stall_handler_) {
    stall_handler_(e.device, tr.at);
  }
  if (transition_handler_) transition_handler_(e, tr.on, tr.at);
}

void FaultInjector::arm(sim::FluidSimulation& fluid) {
  for (std::size_t i = cursor_; i < transitions_.size(); ++i) {
    fluid.schedule_control(transitions_[i].at, [this, i] {
      // Controls fire in time order; the guard tolerates a caller that
      // also stepped the timeline with advance_to().
      while (cursor_ <= i) {
        apply_transition(cursor_);
        ++cursor_;
      }
    });
  }
}

void FaultInjector::advance_to(sim::Ns t) {
  while (cursor_ < transitions_.size() && transitions_[cursor_].at <= t) {
    apply_transition(cursor_);
    ++cursor_;
  }
}

void FaultInjector::restore() {
  machine_.reset_fault_scales();
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (!stalled_applied_[d]) continue;
    const Device& dev = devices_[d];
    for (std::size_t r = 0; r < dev.resources.size(); ++r) {
      machine_.solver().set_capacity(dev.resources[r],
                                     dev.healthy_capacity[r]);
    }
    stalled_applied_[d] = false;
  }
}

void FaultInjector::rewind() {
  restore();
  cursor_ = 0;
  trace_.clear();
}

double FaultInjector::noise_amplification(sim::Ns t) const {
  double amp = 1.0;
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind == FaultKind::kMeasureNoise && event_active(e, t)) {
      amp *= 1.0 + e.severity;
    }
  }
  return amp;
}

bool FaultInjector::device_stalled(int device, sim::Ns t) const {
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind == FaultKind::kDeviceStall && e.device == device &&
        event_active(e, t)) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::any_capacity_fault_active(sim::Ns t) const {
  for (const FaultEvent& e : plan_.events()) {
    // Host kinds never touch the machine's capacities.
    if (e.kind == FaultKind::kMeasureNoise ||
        e.kind == FaultKind::kHostCrash || e.kind == FaultKind::kHostHang ||
        e.kind == FaultKind::kHostRecover) {
      continue;
    }
    if (event_active(e, t)) return true;
  }
  return false;
}

std::vector<NodeId> FaultInjector::degraded_nodes(sim::Ns t) const {
  std::vector<NodeId> nodes;
  for (const FaultEvent& e : plan_.events()) {
    if (!event_active(e, t)) continue;
    switch (e.kind) {
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkFlap:
        nodes.push_back(e.src);
        nodes.push_back(e.dst);
        break;
      case FaultKind::kMcThrottle:
      case FaultKind::kIrqStorm:
        nodes.push_back(e.node);
        break;
      case FaultKind::kDeviceStall:
        if (e.device < static_cast<int>(devices_.size())) {
          nodes.push_back(
              devices_[static_cast<std::size_t>(e.device)].attach_node);
        }
        break;
      case FaultKind::kMeasureNoise:
      case FaultKind::kHostCrash:
      case FaultKind::kHostHang:
      case FaultKind::kHostRecover:
        break;  // host faults live in the fleet id space, not NUMA nodes
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

bool FaultInjector::host_crashed(int host, sim::Ns t) const {
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind == FaultKind::kHostCrash && e.host == host &&
        event_active(e, t)) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::host_hung(int host, sim::Ns t) const {
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind == FaultKind::kHostHang && e.host == host &&
        event_active(e, t)) {
      return true;
    }
  }
  return false;
}

double FaultInjector::host_capacity_factor(int host, sim::Ns t) const {
  double factor = 1.0;
  for (const FaultEvent& e : plan_.events()) {
    if (e.kind == FaultKind::kHostRecover && e.host == host &&
        event_active(e, t)) {
      factor *= std::max(1.0 - e.severity, 0.0);
    }
  }
  return factor;
}

sim::Ns FaultInjector::next_transition_after(sim::Ns t) const {
  for (const Transition& tr : transitions_) {
    if (tr.at > t) return tr.at;
  }
  return std::numeric_limits<double>::infinity();
}

std::string FaultInjector::trace_to_string() const {
  std::string out;
  for (const std::string& line : trace_) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace numaio::faults
