// Per-host circuit breaker for the fleet serving core.
//
// State machine: closed -> open on `failure_threshold` consecutive
// failures or on a p99 breach over the recent latency window; open ->
// half-open after `open_cooldown` of simulated time; half-open admits one
// probe at a time — `probe_successes` consecutive probe successes close
// the breaker, any probe failure re-opens it (cooldown restarts). A
// force-trip (host crash observed by the control plane) opens it
// immediately from any state.
//
// Pure simulated-time state; every transition is reported through the
// optional callback so the fleet layer can emit `fleet.breaker` trace
// events citing the fault transition that caused it.
#pragma once

#include <functional>
#include <vector>

#include "simcore/units.h"

namespace numaio::fleet {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* to_string(BreakerState state);

struct BreakerConfig {
  int failure_threshold = 4;     ///< Consecutive failures that trip it.
  sim::Ns p99_limit = 0.0;       ///< Windowed p99 latency bound; 0 = off.
  int latency_window = 64;       ///< Samples in the sliding p99 window.
  sim::Ns open_cooldown = 0.5e9; ///< Open dwell before half-open probes.
  int probe_successes = 2;       ///< Probe successes needed to close.
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config = {}) : config_(config) {}

  /// (from, to, now, reason) on every state change.
  using TransitionCallback = std::function<void(
      BreakerState from, BreakerState to, sim::Ns now, const char* reason)>;
  void set_transition_callback(TransitionCallback cb) { on_transition_ = cb; }

  /// Whether a dispatch would be admitted right now (const preview; the
  /// open->half-open time transition is *not* taken). True when closed,
  /// or when the cooldown has elapsed and a probe slot is free.
  bool can_accept(sim::Ns now) const;

  /// Admits one dispatch: takes the open->half-open transition when the
  /// cooldown elapsed, and claims the probe slot in half-open. Returns
  /// false when the breaker refuses; on success `*probe` says whether the
  /// dispatch is a half-open probe (pass it back to on_success/on_failure).
  bool try_acquire(sim::Ns now, bool* probe);

  void on_success(sim::Ns now, sim::Ns latency, bool probe);
  void on_failure(sim::Ns now, bool probe, const char* reason);

  /// Force-open from any state (e.g. the host crashed). Resets the
  /// cooldown clock to `now`.
  void trip(sim::Ns now, const char* reason);

  BreakerState state() const { return state_; }
  /// When an open breaker starts admitting probes; meaningless if closed.
  sim::Ns reopen_at() const { return opened_at_ + config_.open_cooldown; }
  int trips() const { return trips_; }

  /// p99 of the latency window; 0 when the window is not yet full.
  /// Public so host class summaries (fleet/placement.h) can report it.
  sim::Ns window_p99() const;

 private:
  void transition(BreakerState to, sim::Ns now, const char* reason);

  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int probe_streak_ = 0;
  bool probe_inflight_ = false;
  sim::Ns opened_at_ = 0.0;
  int trips_ = 0;
  std::vector<sim::Ns> latencies_;  ///< Ring buffer of recent successes.
  std::size_t latency_cursor_ = 0;
  TransitionCallback on_transition_;
};

}  // namespace numaio::fleet
