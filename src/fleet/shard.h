// Sharded admission state for the fleet request path (DESIGN.md §12).
//
// Per-tenant quota buckets and retry budgets live in N tenant-hash-keyed
// shards, each a cache-line-aligned arena. A tenant's state exists in
// exactly one shard, so draining a batched admission epoch shard-by-shard
// — optionally fanned across the deterministic sim::ThreadPool — touches
// disjoint memory per lane and yields verdicts that are bit-identical to
// the serial per-request sequence: each shard processes its tenants'
// arrivals in global arrival order, and per-tenant bucket math only
// depends on that tenant's own history. Results are therefore invariant
// to the shard count; shards exist to amortize and parallelize, never to
// change outcomes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fleet/admission.h"
#include "simcore/thread_pool.h"
#include "simcore/units.h"

namespace numaio::fleet {

struct TenantSpec;

/// Deterministic tenant -> shard map (splitmix64 finalizer, so adjacent
/// tenant ids spread instead of clustering into one shard).
int shard_of_tenant(int tenant, int num_shards);

class ShardSet {
 public:
  /// One bucket + retry budget per tenant in `specs`, distributed across
  /// `num_shards` arenas by shard_of_tenant. num_shards is clamped >= 1.
  ShardSet(std::span<const TenantSpec> specs, int num_shards);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int shard_of(int tenant) const {
    return shard_of_[static_cast<std::size_t>(tenant)];
  }

  /// The tenant's quota bucket / remaining retry budget, wherever its
  /// shard put them. References stay valid for the ShardSet's lifetime.
  TokenBucket& bucket(int tenant);
  int& retry_budget(int tenant);

  /// One admission-epoch arrival: `at` is the request's original submit
  /// time (buckets refill to it, so batched verdicts match the
  /// per-request path bit for bit; per-tenant submit times are monotone).
  struct Arrival {
    int tenant = 0;
    sim::Ns at = 0.0;
  };

  /// Drains one epoch: verdicts[i] = 1 iff arrivals[i] passed its
  /// tenant's quota bucket. Each shard handles its own tenants' arrivals
  /// in order; with `pool` and more than one shard the shards run as one
  /// deterministic fork-join batch (disjoint arenas, disjoint verdict
  /// bytes — no synchronization needed beyond the pool's own barrier).
  void admit_batch(std::span<const Arrival> arrivals,
                   std::vector<unsigned char>& verdicts,
                   sim::ThreadPool* pool);

 private:
  /// Arena for one shard's tenants. Aligned so two shards never share a
  /// cache line when lanes drain them concurrently.
  struct alignas(64) Shard {
    std::vector<TokenBucket> buckets;   ///< Indexed by per-shard slot.
    std::vector<int> retry_budgets;
    std::vector<std::uint32_t> work;    ///< Scratch: arrival indices.
  };

  std::vector<Shard> shards_;
  std::vector<int> shard_of_;  ///< tenant -> shard.
  std::vector<int> slot_of_;   ///< tenant -> slot within its shard.
};

}  // namespace numaio::fleet
