#include "fleet/queue_set.h"

#include <algorithm>
#include <cassert>

#include "fleet/shard.h"

namespace numaio::fleet {

QueueSet::QueueSet(int max_depth, int num_shards)
    : max_depth_(std::max(1, max_depth)),
      shards_(static_cast<std::size_t>(std::max(1, num_shards))) {}

QueueSet::PushResult QueueSet::push(QueueItem item) {
  PushResult result;
  const int home = shard_of_tenant(item.tenant, num_shards());
  PriorityFifo& fifo = shards_[static_cast<std::size_t>(home)].fifo;
  if (depth_ < max_depth_) {
    fifo.push(item, next_seq_++);
    ++depth_;
    max_shard_depth_ = std::max(max_shard_depth_, fifo.size());
    result.accepted = true;
    return result;
  }
  // Two-level shed: each non-empty shard nominates its local
  // lowest-priority latest-arrival entry; the steal pass then picks the
  // global loser (min priority, max seq), matching BoundedQueue exactly.
  int victim_shard = -1;
  const PriorityFifo::Entry* worst = nullptr;
  for (int s = 0; s < num_shards(); ++s) {
    const PriorityFifo& f = shards_[static_cast<std::size_t>(s)].fifo;
    if (f.empty()) continue;
    const PriorityFifo::Entry& cand = f.victim();
    if (worst == nullptr || cand.item.priority < worst->item.priority ||
        (cand.item.priority == worst->item.priority &&
         cand.seq > worst->seq)) {
      worst = &cand;
      victim_shard = s;
    }
  }
  assert(worst != nullptr);
  result.shed = true;
  if (item.priority <= worst->item.priority) {
    // The incoming item is the latest arrival at the lowest priority.
    result.victim = item;
    return result;
  }
  result.victim =
      shards_[static_cast<std::size_t>(victim_shard)].fifo.pop_victim();
  if (victim_shard != home) ++steals_;
  fifo.push(item, next_seq_++);
  result.accepted = true;
  max_shard_depth_ = std::max(max_shard_depth_, fifo.size());
  return result;
}

QueueItem QueueSet::pop() {
  assert(depth_ > 0);
  int best_shard = -1;
  const PriorityFifo::Entry* best = nullptr;
  for (int s = 0; s < num_shards(); ++s) {
    const PriorityFifo& f = shards_[static_cast<std::size_t>(s)].fifo;
    if (f.empty()) continue;
    const PriorityFifo::Entry& cand = f.best();
    if (best == nullptr || cand.item.priority > best->item.priority ||
        (cand.item.priority == best->item.priority &&
         cand.seq < best->seq)) {
      best = &cand;
      best_shard = s;
    }
  }
  assert(best != nullptr);
  --depth_;
  return shards_[static_cast<std::size_t>(best_shard)].fifo.pop_best();
}

bool QueueSet::remove(int request, int tenant) {
  const int home = shard_of_tenant(tenant, num_shards());
  if (!shards_[static_cast<std::size_t>(home)].fifo.remove(request)) {
    return false;
  }
  --depth_;
  return true;
}

int QueueSet::shard_depth(int shard) const {
  return shards_[static_cast<std::size_t>(shard)].fifo.size();
}

}  // namespace numaio::fleet
