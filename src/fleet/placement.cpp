#include "fleet/placement.h"

#include <cassert>

#include "model/classify.h"

namespace numaio::fleet {

void ClassPlacer::refresh(std::span<const HostSummary> summaries,
                          sim::Ns now) {
  assert(static_cast<int>(summaries.size()) == num_hosts_);
  std::vector<double> capacity(summaries.size());
  for (std::size_t h = 0; h < summaries.size(); ++h) {
    capacity[h] = summaries[h].capacity_gbps;
  }
  const std::vector<int> class_of =
      model::gap_classes(capacity, config_.rel_gap);
  int num = 0;
  for (const int c : class_of) num = num > c + 1 ? num : c + 1;
  classes_.assign(static_cast<std::size_t>(num), {});
  for (std::size_t h = 0; h < class_of.size(); ++h) {
    classes_[static_cast<std::size_t>(class_of[h])].push_back(
        static_cast<int>(h));
  }
  if (cursor_ >= classes_.size()) cursor_ = 0;
  refreshed_ = true;
  last_refresh_ = now;
  ++refreshes_;
}

int ClassPlacer::pick(std::span<const int> live_load,
                      const std::function<bool(int)>& eligible) {
  assert(static_cast<int>(live_load.size()) == num_hosts_);
  const auto load = [&live_load](int h) {
    return live_load[static_cast<std::size_t>(h)];
  };
  if (classes_.empty()) {
    // Not yet refreshed: global least-loaded, the PR 6 policy.
    int best = -1;
    for (int h = 0; h < num_hosts_; ++h) {
      if (!eligible(h)) continue;
      if (best < 0 || load(h) < load(best)) best = h;
    }
    return best;
  }
  const std::size_t k = classes_.size();
  for (std::size_t attempt = 0; attempt < k; ++attempt) {
    const std::size_t cls = (cursor_ + attempt) % k;
    int best = -1;
    for (const int h : classes_[cls]) {
      if (!eligible(h)) continue;
      if (best < 0 || load(h) < load(best)) best = h;
    }
    if (best >= 0) {
      cursor_ = (cursor_ + attempt + 1) % k;
      if (attempt == 0) {
        ++spread_picks_;
      } else {
        ++fallback_picks_;
      }
      return best;
    }
  }
  return -1;
}

}  // namespace numaio::fleet
