// Class-aware cross-host placement (paper §VI, DESIGN.md §12).
//
// The paper's §VI insight, lifted from NUMA nodes to fleet hosts:
// equal-performance resources should be treated as one class, with load
// spread round-robin *across* classes and least-loaded *within* one.
// Hosts are partitioned by the same §V-A gap clustering the NUMA
// classifier uses (model::gap_classes), driven not by live per-request
// state but by coarse per-host summaries — capacity head-room, breaker
// admission, windowed p99 — refreshed on a cadence. Placement between
// refreshes consults the (possibly stale) class table; the staleness
// bound is FleetConfig::summary_refresh and the contract is spelled out
// in DESIGN.md §12.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "simcore/units.h"

namespace numaio::fleet {

/// Coarse per-host view, refreshed on the summary cadence.
struct HostSummary {
  double capacity_gbps = 0.0;  ///< Effective capacity (degrades on faults).
  int free_slots = 0;          ///< Inflight head-room at refresh time.
  bool admitting = true;       ///< Breaker would admit at refresh time.
  sim::Ns window_p99 = 0.0;    ///< Breaker's windowed p99 (0 = not full).
};

struct PlacerConfig {
  /// Relative capacity gap that opens a new host class (§V-A walk).
  double rel_gap = 0.08;
  /// Minimum simulated time between class-table rebuilds.
  sim::Ns refresh_period = 50.0e6;
};

class ClassPlacer {
 public:
  ClassPlacer(int num_hosts, PlacerConfig config)
      : num_hosts_(num_hosts), config_(config) {}

  /// Whether the class table is due for a rebuild at `now`.
  bool stale(sim::Ns now) const {
    return !refreshed_ || now - last_refresh_ >= config_.refresh_period;
  }

  /// Rebuilds the class table from fresh summaries (one per host).
  /// Classes are ordered fastest first; host ids ascend within a class.
  void refresh(std::span<const HostSummary> summaries, sim::Ns now);

  /// Picks a host: starting from the round-robin cursor class, take the
  /// least-loaded eligible host (ties: lower id) of the first class that
  /// has one, then advance the cursor past that class. `live_load` is
  /// current inflight per host (live, not summary — load changes every
  /// dispatch; class membership does not). Returns -1 when no host is
  /// eligible. Before the first refresh there are no classes and the
  /// scan degrades to global least-loaded.
  int pick(std::span<const int> live_load,
           const std::function<bool(int)>& eligible);

  int num_classes() const { return static_cast<int>(classes_.size()); }
  const std::vector<std::vector<int>>& classes() const { return classes_; }
  /// Picks served by the cursor class vs. ones that fell through to a
  /// later class (cursor class had no eligible host).
  long long spread_picks() const { return spread_picks_; }
  long long fallback_picks() const { return fallback_picks_; }
  long long refreshes() const { return refreshes_; }

 private:
  int num_hosts_;
  PlacerConfig config_;
  std::vector<std::vector<int>> classes_;  ///< Host ids, fastest first.
  std::size_t cursor_ = 0;
  bool refreshed_ = false;
  sim::Ns last_refresh_ = 0.0;
  long long spread_picks_ = 0;
  long long fallback_picks_ = 0;
  long long refreshes_ = 0;
};

}  // namespace numaio::fleet
