#include "fleet/breaker.h"

#include <algorithm>
#include <cmath>

namespace numaio::fleet {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

void CircuitBreaker::transition(BreakerState to, sim::Ns now,
                                const char* reason) {
  if (to == state_) return;
  const BreakerState from = state_;
  state_ = to;
  if (to == BreakerState::kOpen) {
    opened_at_ = now;
    ++trips_;
    probe_streak_ = 0;
    probe_inflight_ = false;
    consecutive_failures_ = 0;
    latencies_.clear();
    latency_cursor_ = 0;
  } else if (to == BreakerState::kHalfOpen) {
    probe_streak_ = 0;
    probe_inflight_ = false;
  } else {  // closed
    consecutive_failures_ = 0;
  }
  if (on_transition_) on_transition_(from, to, now, reason);
}

bool CircuitBreaker::can_accept(sim::Ns now) const {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return now >= reopen_at();  // would go half-open and probe
    case BreakerState::kHalfOpen:
      return !probe_inflight_;
  }
  return false;
}

bool CircuitBreaker::try_acquire(sim::Ns now, bool* probe) {
  *probe = false;
  if (state_ == BreakerState::kOpen && now >= reopen_at()) {
    transition(BreakerState::kHalfOpen, now, "cooldown");
  }
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return false;
    case BreakerState::kHalfOpen:
      if (probe_inflight_) return false;
      probe_inflight_ = true;
      *probe = true;
      return true;
  }
  return false;
}

sim::Ns CircuitBreaker::window_p99() const {
  if (latencies_.size() < static_cast<std::size_t>(config_.latency_window)) {
    return 0.0;
  }
  std::vector<sim::Ns> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(sorted.size()))) - 1;
  return sorted[std::min(rank, sorted.size() - 1)];
}

void CircuitBreaker::on_success(sim::Ns now, sim::Ns latency, bool probe) {
  if (state_ == BreakerState::kHalfOpen) {
    if (probe) {
      probe_inflight_ = false;
      ++probe_streak_;
      if (probe_streak_ >= config_.probe_successes) {
        transition(BreakerState::kClosed, now, "probes");
      }
    }
    return;
  }
  consecutive_failures_ = 0;
  if (config_.p99_limit > 0.0 && config_.latency_window > 0) {
    if (latencies_.size() <
        static_cast<std::size_t>(config_.latency_window)) {
      latencies_.push_back(latency);
    } else {
      latencies_[latency_cursor_] = latency;
      latency_cursor_ = (latency_cursor_ + 1) % latencies_.size();
    }
    if (state_ == BreakerState::kClosed && window_p99() > config_.p99_limit) {
      transition(BreakerState::kOpen, now, "p99");
    }
  }
}

void CircuitBreaker::on_failure(sim::Ns now, bool probe, const char* reason) {
  if (state_ == BreakerState::kHalfOpen) {
    if (probe) probe_inflight_ = false;
    transition(BreakerState::kOpen, now, reason);
    return;
  }
  if (state_ != BreakerState::kClosed) return;
  ++consecutive_failures_;
  if (consecutive_failures_ >= config_.failure_threshold) {
    transition(BreakerState::kOpen, now, reason);
  }
}

void CircuitBreaker::trip(sim::Ns now, const char* reason) {
  if (state_ == BreakerState::kOpen) {
    opened_at_ = now;  // restart the cooldown
    return;
  }
  transition(BreakerState::kOpen, now, reason);
}

}  // namespace numaio::fleet
