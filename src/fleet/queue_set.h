// Sharded admission queue for the fleet request path (DESIGN.md §13).
//
// QueueSet splits the bounded queue into per-shard arenas keyed by the
// same splitmix64 tenant hash the ShardSet uses, so a tenant's queued
// work and its quota state land in the same shard. The *semantics* are
// exactly the single BoundedQueue's: one global depth bound, one global
// arrival sequence, pop = highest priority earliest arrival across all
// shards, shed = lowest priority latest arrival across all shards. The
// two-level shed policy realizes that: the full shard nominates its local
// lowest-priority-latest-arrival candidate, every other shard does the
// same, and a cross-shard steal pass picks the global loser — so the shed
// order is bit-identical to the single-queue path for any shard count
// (property-tested in tests/test_queue_set.cpp). Shards exist to keep
// per-shard fifos short and cache-line-disjoint, never to change
// outcomes.
#pragma once

#include <cstdint>
#include <vector>

#include "fleet/admission.h"

namespace numaio::fleet {

class QueueSet {
 public:
  /// `num_shards` per-shard arenas sharing one `max_depth` global bound.
  /// Both are clamped >= 1 (FleetConfig::validate rejects zeros upstream
  /// with a typed Status; the clamp here is a defensive floor).
  QueueSet(int max_depth, int num_shards);

  using PushResult = BoundedQueue::PushResult;

  /// Enqueues into shard_of_tenant(item.tenant). When the global depth is
  /// at the bound, sheds the globally lowest-priority latest-arrival item
  /// — the incoming one unless it outranks the current minimum — exactly
  /// like BoundedQueue::push.
  PushResult push(QueueItem item);

  /// Globally highest-priority, earliest-arrival item. Must be non-empty.
  QueueItem pop();

  /// Removes the entry for `request`; `tenant` names its home shard.
  bool remove(int request, int tenant);

  bool empty() const { return depth_ == 0; }
  int depth() const { return depth_; }
  int max_depth() const { return max_depth_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  int shard_depth(int shard) const;
  /// High-water mark of any single shard's depth over the queue's life.
  int max_shard_depth() const { return max_shard_depth_; }
  /// Shed victims stolen from a shard other than the incoming item's.
  long long cross_shard_steals() const { return steals_; }

 private:
  /// One shard's fifo, aligned so concurrent readers of neighbouring
  /// shards never share a cache line.
  struct alignas(64) Shard {
    PriorityFifo fifo;
  };

  int max_depth_;
  int depth_ = 0;
  int max_shard_depth_ = 0;
  std::uint64_t next_seq_ = 0;  ///< Global arrival order across shards.
  long long steals_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace numaio::fleet
