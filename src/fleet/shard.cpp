#include "fleet/shard.h"

#include <cassert>

#include "fleet/fleet.h"

namespace numaio::fleet {

int shard_of_tenant(int tenant, int num_shards) {
  if (num_shards <= 1) return 0;
  std::uint64_t x = static_cast<std::uint64_t>(tenant);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<int>(x % static_cast<std::uint64_t>(num_shards));
}

ShardSet::ShardSet(std::span<const TenantSpec> specs, int num_shards) {
  const int n = num_shards < 1 ? 1 : num_shards;
  shards_.resize(static_cast<std::size_t>(n));
  shard_of_.reserve(specs.size());
  slot_of_.reserve(specs.size());
  for (std::size_t t = 0; t < specs.size(); ++t) {
    const int s = shard_of_tenant(static_cast<int>(t), n);
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    shard_of_.push_back(s);
    slot_of_.push_back(static_cast<int>(shard.buckets.size()));
    shard.buckets.emplace_back(specs[t].quota_rate_per_s,
                               specs[t].quota_burst);
    shard.retry_budgets.push_back(specs[t].retry_budget);
  }
}

TokenBucket& ShardSet::bucket(int tenant) {
  const std::size_t t = static_cast<std::size_t>(tenant);
  return shards_[static_cast<std::size_t>(shard_of_[t])]
      .buckets[static_cast<std::size_t>(slot_of_[t])];
}

int& ShardSet::retry_budget(int tenant) {
  const std::size_t t = static_cast<std::size_t>(tenant);
  return shards_[static_cast<std::size_t>(shard_of_[t])]
      .retry_budgets[static_cast<std::size_t>(slot_of_[t])];
}

void ShardSet::admit_batch(std::span<const Arrival> arrivals,
                           std::vector<unsigned char>& verdicts,
                           sim::ThreadPool* pool) {
  verdicts.assign(arrivals.size(), 0);
  for (Shard& shard : shards_) shard.work.clear();
  // Partition arrival indices by shard, preserving global arrival order
  // within each shard (all a tenant's bucket math needs).
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const std::size_t t = static_cast<std::size_t>(arrivals[i].tenant);
    shards_[static_cast<std::size_t>(shard_of_[t])].work.push_back(
        static_cast<std::uint32_t>(i));
  }
  const auto drain = [&](std::size_t s) {
    Shard& shard = shards_[s];
    for (const std::uint32_t i : shard.work) {
      const Arrival& a = arrivals[i];
      const std::size_t t = static_cast<std::size_t>(a.tenant);
      assert(shard_of_[t] == static_cast<int>(s));
      TokenBucket& b =
          shard.buckets[static_cast<std::size_t>(slot_of_[t])];
      verdicts[i] = b.try_take(a.at) ? 1 : 0;
    }
  };
  if (pool != nullptr && shards_.size() > 1) {
    // Lanes write disjoint shard arenas and disjoint verdict bytes; the
    // pool's join publishes everything back to the caller.
    pool->run(shards_.size(), /*deterministic=*/true,
              [&](std::size_t s, int) { drain(s); });
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) drain(s);
  }
}

}  // namespace numaio::fleet
