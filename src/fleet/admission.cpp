#include "fleet/admission.h"

#include <algorithm>
#include <cassert>

namespace numaio::fleet {

void TokenBucket::refill(sim::Ns now) {
  if (now <= last_) return;
  tokens_ = std::min(burst_, tokens_ + rate_per_s_ * (now - last_) / 1e9);
  last_ = now;
}

bool TokenBucket::try_take(sim::Ns now) {
  refill(now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::tokens(sim::Ns now) {
  refill(now);
  return tokens_;
}

void PriorityFifo::push(QueueItem item, std::uint64_t seq) {
  std::deque<Entry>& level = levels_[item.priority];
  assert(level.empty() || level.back().seq < seq);
  level.push_back(Entry{item, seq});
  ++size_;
}

const PriorityFifo::Entry& PriorityFifo::best() const {
  assert(!empty());
  // Highest priority level; FIFO order within it makes front the earliest.
  return levels_.rbegin()->second.front();
}

const PriorityFifo::Entry& PriorityFifo::victim() const {
  assert(!empty());
  // Lowest priority level; its back is the latest arrival at that level.
  return levels_.begin()->second.back();
}

QueueItem PriorityFifo::pop_best() {
  assert(!empty());
  auto it = std::prev(levels_.end());
  const QueueItem item = it->second.front().item;
  it->second.pop_front();
  if (it->second.empty()) levels_.erase(it);
  --size_;
  return item;
}

QueueItem PriorityFifo::pop_victim() {
  assert(!empty());
  auto it = levels_.begin();
  const QueueItem item = it->second.back().item;
  it->second.pop_back();
  if (it->second.empty()) levels_.erase(it);
  --size_;
  return item;
}

bool PriorityFifo::remove(int request) {
  for (auto it = levels_.begin(); it != levels_.end(); ++it) {
    std::deque<Entry>& level = it->second;
    for (auto e = level.begin(); e != level.end(); ++e) {
      if (e->item.request != request) continue;
      level.erase(e);
      if (level.empty()) levels_.erase(it);
      --size_;
      return true;
    }
  }
  return false;
}

BoundedQueue::PushResult BoundedQueue::push(QueueItem item) {
  PushResult result;
  if (depth() < max_depth_) {
    fifo_.push(item, next_seq_++);
    result.accepted = true;
    return result;
  }
  assert(!fifo_.empty());
  result.shed = true;
  if (item.priority <= fifo_.victim().item.priority) {
    // The incoming item does not outrank the current minimum: it is the
    // latest arrival at the lowest priority, so it is the one shed.
    result.victim = item;
    return result;
  }
  result.victim = fifo_.pop_victim();
  fifo_.push(item, next_seq_++);
  result.accepted = true;
  return result;
}

QueueItem BoundedQueue::pop() { return fifo_.pop_best(); }

bool BoundedQueue::remove(int request) { return fifo_.remove(request); }

}  // namespace numaio::fleet
