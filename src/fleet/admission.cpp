#include "fleet/admission.h"

#include <algorithm>
#include <cassert>

namespace numaio::fleet {

void TokenBucket::refill(sim::Ns now) {
  if (now <= last_) return;
  tokens_ = std::min(burst_, tokens_ + rate_per_s_ * (now - last_) / 1e9);
  last_ = now;
}

bool TokenBucket::try_take(sim::Ns now) {
  refill(now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::tokens(sim::Ns now) {
  refill(now);
  return tokens_;
}

BoundedQueue::PushResult BoundedQueue::push(QueueItem item) {
  PushResult result;
  if (depth() < max_depth_) {
    entries_.push_back(Entry{item, next_seq_++});
    result.accepted = true;
    return result;
  }
  assert(!entries_.empty());
  // Shed target: lowest priority present; among those, latest arrival.
  std::size_t victim = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const Entry& v = entries_[victim];
    if (e.item.priority < v.item.priority ||
        (e.item.priority == v.item.priority && e.seq > v.seq)) {
      victim = i;
    }
  }
  result.shed = true;
  if (item.priority <= entries_[victim].item.priority) {
    // The incoming item does not outrank the current minimum: it is the
    // latest arrival at the lowest priority, so it is the one shed.
    result.victim = item;
    return result;
  }
  result.victim = entries_[victim].item;
  entries_[victim] = Entry{item, next_seq_++};
  result.accepted = true;
  return result;
}

QueueItem BoundedQueue::pop() {
  assert(!entries_.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const Entry& b = entries_[best];
    if (e.item.priority > b.item.priority ||
        (e.item.priority == b.item.priority && e.seq < b.seq)) {
      best = i;
    }
  }
  const QueueItem item = entries_[best].item;
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(best));
  return item;
}

bool BoundedQueue::remove(int request) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].item.request == request) {
      entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

}  // namespace numaio::fleet
