#include "fleet/fleet.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <utility>

#include <deque>

#include "faults/injector.h"
#include "fleet/admission.h"
#include "fleet/placement.h"
#include "fleet/queue_set.h"
#include "fleet/shard.h"
#include "io/fio.h"
#include "io/nic.h"
#include "io/testbed.h"
#include "model/online.h"
#include "simcore/rng.h"
#include "simcore/sharded_event_engine.h"
#include "simcore/stats.h"
#include "simcore/thread_pool.h"

namespace numaio::fleet {

namespace {
/// Flow-completion slack: remaining bytes below this count as done
/// (absorbs float rounding in rate * dt integration).
constexpr double kDoneBytes = 0.5;
/// Deadline comparisons tolerate this much float skew (1 us).
constexpr sim::Ns kTimeEps = 1.0e3;
}  // namespace

Status admission_status(bool admitted, const std::string& reason) {
  if (admitted) return Status{};
  return Status{StatusCode::kOverloaded, reason};
}

Status FleetConfig::validate() const {
  const auto usage = [](const char* message) {
    return Status{StatusCode::kUsage, message};
  };
  if (num_hosts < 1) return usage("fleet needs at least one host");
  if (queue_depth < 1 || max_inflight_per_host < 1) {
    return usage("queue depth and per-host inflight must be >= 1");
  }
  if (shards < 1) return usage("shards must be >= 1");
  // Zero shards/lanes used to be conceivable as "pick for me"; rejecting
  // them with a typed kUsage keeps "1 = serial reference" unambiguous
  // instead of silently clamping.
  if (queue_shards < 1) return usage("queue shards must be >= 1");
  if (event_lanes < 1) return usage("event lanes must be >= 1");
  if (alt_sku_every < 0) return usage("alt SKU cadence must be >= 0");
  if (completion_grid < 0.0) return usage("completion grid must be >= 0");
  if (batch_window < 0.0) return usage("batch window must be >= 0");
  if (batch_window > 0.0 && batch_window >= deadline) {
    return usage("batch window must be shorter than the deadline");
  }
  if (summary_refresh <= 0.0) return usage("summary refresh must be > 0");
  return Status{};
}

FleetSim::FleetSim(FleetConfig config, std::vector<TenantSpec> tenants)
    : config_(config), tenants_(std::move(tenants)) {
  const Status status = config_.validate();
  if (!status.ok()) throw StatusError(status);
  if (tenants_.empty()) {
    throw StatusError(StatusCode::kUsage, "fleet needs at least one tenant");
  }
}

FleetSim::~FleetSim() = default;

void FleetSim::set_fault_plan(faults::FaultPlan plan) {
  plan_ = std::move(plan);
}

void FleetSim::set_observer(obs::Context* obs) { obs_ = obs; }

namespace {

/// One request's lifetime state. Lives in a stable-address arena for the
/// whole run; event callbacks hold (id, generation) pairs, never pointers
/// into containers that may reallocate.
struct Request {
  int id = 0;
  int tenant = 0;
  int priority = 0;
  sim::Ns submit = 0.0;
  sim::Ns admitted_at = 0.0;  ///< When admission said yes (epoch drain).
  sim::Ns deadline_at = 0.0;
  sim::Bytes bytes = 0;
  const char* engine = io::kTcpSend;
  int attempts = 0;
  /// Bumped whenever the attempt state changes; timeout events captured an
  /// older generation become no-ops.
  int generation = 0;
  bool done = false;
  bool queued = false;
  bool inflight = false;
  bool probe = false;   ///< Current attempt is a half-open breaker probe.
  int host = -1;
  topo::NodeId node = -1;
  sim::FlowId flow = 0;
  double remaining = 0.0;  ///< Bytes left in the current attempt.
};

struct HostState {
  std::unique_ptr<io::Testbed> tb;
  std::unique_ptr<model::OnlineScheduler> sched;
  CircuitBreaker breaker;
  std::vector<Request*> inflight;
  sim::Ns last_advance = 0.0;
  /// Bumped on any change to the host's flow set or capacity factor;
  /// completion-projection events with a stale generation are no-ops.
  std::uint64_t projection = 0;
  int sku = 0;  ///< 0 = DL585, 1 = the lite SKU (alt_sku_every).
  /// This host's SKU's unloaded coarse capacity (Gbps) and class-1
  /// serve nodes — per host since a mixed fleet has per-SKU values.
  double coarse_capacity = 0.0;
  const std::vector<topo::NodeId>* serve_nodes = nullptr;
  /// Lane-drain scratch (DESIGN.md §13): the host's event lane advances
  /// the fluid state and parks finished requests here; the serial merge
  /// barrier commits them. Only the lane touches these between barriers.
  std::vector<Request*> finished;
  bool due = false;

  HostState(std::unique_ptr<io::Testbed> testbed, BreakerConfig breaker_cfg)
      : tb(std::move(testbed)), breaker(breaker_cfg) {}
};

/// Per-tenant bookkeeping that stays on the main event loop. Quota
/// buckets and retry budgets live in the ShardSet arenas instead
/// (fleet/shard.h), so batched epochs can drain them shard-parallel.
struct TenantRuntime {
  sim::Rng arrivals;
  TenantStats stats;
  std::vector<double> latencies;
  explicit TenantRuntime(sim::Rng rng) : arrivals(rng) {}
};

/// One shared fork-join pool serves both batched admission (ShardSet
/// drains) and event-lane rounds; null when every path is serial.
std::unique_ptr<sim::ThreadPool> make_fleet_pool(const FleetConfig& config) {
  int threads = 1;
  if (config.batch_window > 0.0 && config.shards > 1) {
    threads = std::max(threads, std::min(config.shards, 8));
  }
  if (config.event_lanes > 1) {
    threads = std::max(threads,
                       std::min(config.event_lanes, config.num_hosts));
  }
  if (threads <= 1) return nullptr;
  return std::make_unique<sim::ThreadPool>(threads);
}

constexpr int kProjectionEvent = 1;  ///< Lane-event kind: completion alarm.

class FleetRuntime {
 public:
  FleetRuntime(const FleetConfig& config,
               const std::vector<TenantSpec>& tenants,
               const faults::FaultPlan& plan, obs::Context* obs)
      : config_(config),
        specs_(tenants),
        obs_(obs),
        pool_(make_fleet_pool(config)),
        engine_(config.num_hosts,
                config.event_lanes > 1 ? pool_.get() : nullptr),
        queue_(config.queue_depth, config.queue_shards),
        shards_(std::span<const TenantSpec>(tenants), config.shards),
        placer_(config.num_hosts,
                PlacerConfig{/*rel_gap=*/0.08, config.summary_refresh}),
        backoff_rng_(sim::Rng(config.seed).fork(0x666c656574u, 1)),
        workload_rng_(sim::Rng(config.seed).fork(0x666c656574u, 2)) {
    build_hosts();
    engine_.set_lane_handler(
        [this](int lane, const sim::ShardedEventEngine::LaneEvent& ev) {
          on_lane_event(lane, ev);
        });
    engine_.set_merge_hook([this](sim::Ns at) { on_merge(at); });
    for (std::size_t t = 0; t < specs_.size(); ++t) {
      tenants_.emplace_back(
          sim::Rng(config_.seed).fork(0x666c656574u, 0x100 + t));
      tenants_.back().stats.name = specs_[t].name;
      tenants_.back().stats.priority = specs_[t].priority;
    }
    if (!plan.empty()) {
      try {
        plan.validate(hosts_[0].tb->host().num_configured_nodes(),
                      /*num_devices=*/0, config_.num_hosts);
      } catch (const StatusError&) {
        throw;
      } catch (const std::invalid_argument& e) {
        throw StatusError(StatusCode::kUsage, e.what());
      }
      injector_ = std::make_unique<faults::FaultInjector>(
          hosts_[0].tb->machine(), plan);
      // Machine-level kinds in the plan degrade host 0's fabric; its
      // scheduler steers chunk placement away from those nodes.
      hosts_[0].sched->set_fault_injector(injector_.get());
      injector_->set_observer(obs_);
      injector_->set_transition_handler(
          [this](const faults::FaultEvent& e, bool on, sim::Ns at) {
            if (e.kind == faults::FaultKind::kHostCrash && on) {
              on_host_crash(e.host, at);
            }
          });
    }
    register_metrics();
  }

  FleetReport run();

 private:
  // --- construction ------------------------------------------------------
  bool host_is_alt(int h) const {
    return config_.alt_sku_every > 0 &&
           h % config_.alt_sku_every == config_.alt_sku_every - 1;
  }

  void build_hosts() {
    // Hosts come in at most two SKUs (DL585 + the lite variant);
    // boot-time Algorithm 1 characterization runs once per SKU present
    // and the classification is shared by every host of that SKU.
    hosts_.reserve(static_cast<std::size_t>(config_.num_hosts));
    for (int h = 0; h < config_.num_hosts; ++h) {
      const bool alt = host_is_alt(h);
      hosts_.emplace_back(std::make_unique<io::Testbed>(
                              alt ? io::Testbed::dl585_lite(config_.solve)
                                  : io::Testbed::dl585(config_.solve)),
                          config_.breaker);
      hosts_.back().sku = alt ? 1 : 0;
      if (obs_ != nullptr) {
        // Metrics-only tap on each host's solver (solver.* families in
        // one fleet snapshot); no trace records, so trace bytes are
        // untouched.
        hosts_.back().tb->machine().solver().set_observer(obs_);
      }
    }
    model::OnlineConfig sched_cfg;
    sched_cfg.policy = model::OnlinePolicy::kModelAdaptive;
    for (int sku = 0; sku < 2; ++sku) {
      int first = -1;
      for (int h = 0; h < config_.num_hosts; ++h) {
        if (hosts_[static_cast<std::size_t>(h)].sku == sku) {
          first = h;
          break;
        }
      }
      if (first < 0) continue;
      io::Testbed& tb = *hosts_[static_cast<std::size_t>(first)].tb;
      const auto wm = model::build_iomodel(tb.host(), tb.device_node(),
                                           model::Direction::kDeviceWrite);
      const auto rm = model::build_iomodel(tb.host(), tb.device_node(),
                                           model::Direction::kDeviceRead);
      const auto wc = model::classify(wm, tb.machine().topology());
      const auto rc = model::classify(rm, tb.machine().topology());
      if (config_.service_model == ServiceModel::kCoarse ||
          config_.placement == PlacementPolicy::kClassSpread) {
        // Coarse service capacity: what max_inflight_per_host concurrent
        // class-1 TCP streams get from the max-min-fair solver on an
        // unloaded host of this SKU. One solve at build time; the flows
        // are removed again, so the probe is invisible to the run's own
        // rates.
        serve_nodes_[sku] = wc.classes[0];
        const std::vector<topo::NodeId>& nodes = serve_nodes_[sku];
        sim::FlowSolver& solver = tb.machine().solver();
        std::vector<sim::FlowId> probes;
        for (int i = 0; i < config_.max_inflight_per_host; ++i) {
          io::StreamSpec spec;
          spec.device = &tb.nic();
          spec.engine = io::kTcpSend;
          const topo::NodeId node =
              nodes[static_cast<std::size_t>(i) % nodes.size()];
          spec.cpu_node = node;
          spec.mem_node = node;
          const io::StreamShape shape = io::shape_stream(tb.machine(), spec);
          probes.push_back(solver.add_flow(shape.usages, shape.rate_cap));
        }
        const auto& rates = solver.solve();
        coarse_capacity_[sku] = 0.0;
        for (const sim::FlowId f : probes) coarse_capacity_[sku] += rates[f];
        solver.remove_flows(probes);
      }
      for (int h = 0; h < config_.num_hosts; ++h) {
        HostState& hs = hosts_[static_cast<std::size_t>(h)];
        if (hs.sku != sku) continue;
        hs.coarse_capacity = coarse_capacity_[sku];
        hs.serve_nodes = &serve_nodes_[sku];
        hs.sched = std::make_unique<model::OnlineScheduler>(
            hs.tb->host(), hs.tb->nic(), wc, rc, sched_cfg);
      }
    }
    for (int h = 0; h < config_.num_hosts; ++h) {
      hosts_[static_cast<std::size_t>(h)].breaker.set_transition_callback(
          [this, h](BreakerState from, BreakerState to, sim::Ns at,
                    const char* reason) {
            on_breaker_transition(h, from, to, at, reason);
          });
    }
  }

  void register_metrics() {
    if (obs_ == nullptr) return;
    obs::MetricsRegistry& m = obs_->metrics;
    m_requests_ = m.counter("fleet.requests");
    m_admitted_ = m.counter("fleet.admitted");
    m_rejected_ = m.counter("fleet.rejected_quota");
    m_shed_ = m.counter("fleet.shed");
    m_dispatches_ = m.counter("fleet.dispatches");
    m_timeouts_ = m.counter("fleet.timeouts");
    m_retries_ = m.counter("fleet.retries");
    m_replaced_ = m.counter("fleet.replaced");
    m_completed_ = m.counter("fleet.completed");
    m_failed_ = m.counter("fleet.failed");
    m_trips_ = m.counter("fleet.breaker_trips");
    g_queue_depth_ = m.gauge("fleet.queue_depth");
    g_breakers_open_ = m.gauge("fleet.breakers_open");
    g_goodput_ = m.gauge("fleet.goodput_rps");
    h_latency_ms_ = m.histogram(
        "fleet.latency_ms", {5.0, 10.0, 25.0, 50.0, 100.0, 200.0, 400.0,
                             800.0});
    m_batch_epochs_ = m.counter("fleet.batch_epochs");
    m_batch_admitted_ = m.counter("fleet.batch_admitted");
    m_batch_rejected_ = m.counter("fleet.batch_rejected");
    h_batch_arrivals_ = m.histogram(
        "fleet.batch_arrivals",
        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0});
    h_placement_ms_ = m.histogram(
        "fleet.placement_ms", {0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 250.0});
    m_place_spread_ = m.counter("placement.class_spread");
    m_place_fallback_ = m.counter("placement.class_fallback");
    m_summary_refreshes_ = m.counter("placement.summary_refreshes");
    g_class_count_ = m.gauge("placement.class_count");
    g_queue_shards_ = m.gauge("fleet.queue_shards");
    m_shard_steals_ = m.counter("fleet.queue_shard_steals");
    g_shard_max_depth_ = m.gauge("fleet.queue_shard_max_depth");
    g_lanes_ = m.gauge("engine.lanes");
    m_lane_events_ = m.counter("engine.lane_events");
    m_lane_rounds_ = m.counter("engine.lane_rounds");
    m_lane_parallel_ = m.counter("engine.lane_parallel_batches");
  }

  // --- small helpers -----------------------------------------------------
  obs::TraceRecorder* trace() {
    return obs_ != nullptr && obs_->trace.enabled() ? &obs_->trace : nullptr;
  }
  obs::EventId fault_cause() const {
    return injector_ != nullptr ? injector_->last_transition_event() : 0;
  }
  std::string request_detail(const Request& req) const {
    return specs_[static_cast<std::size_t>(req.tenant)].name + " prio " +
           std::to_string(req.priority) + " req " + std::to_string(req.id);
  }
  void emit(const char* name, const Request& req, std::string_view outcome,
            obs::EventId cause, sim::Ns now) {
    if (trace() == nullptr) return;
    obs::EventFields fields;
    fields.t_sim = now;
    fields.node_a = req.host;
    fields.node_b = req.node;
    fields.bytes = static_cast<long long>(req.bytes);
    const std::string detail = request_detail(req);
    fields.detail = detail;
    trace()->event(name, run_span_, cause, outcome, fields);
  }
  void note_queue_depth() {
    const int depth = queue_.depth();
    max_queue_depth_ = std::max(max_queue_depth_, depth);
    if (obs_ != nullptr) obs_->metrics.set(g_queue_depth_, depth);
  }
  TenantRuntime& tenant_of(const Request& req) {
    return tenants_[static_cast<std::size_t>(req.tenant)];
  }

  /// Host service-rate multiplier: 0 while crashed or hung, the recovery
  /// warm-up factor otherwise.
  double host_factor(int h, sim::Ns t) const {
    if (injector_ == nullptr) return 1.0;
    if (injector_->host_crashed(h, t) || injector_->host_hung(h, t)) {
      return 0.0;
    }
    return injector_->host_capacity_factor(h, t);
  }

  // --- fluid progress per host ------------------------------------------
  void advance_host(int h, sim::Ns now) {
    HostState& hs = hosts_[static_cast<std::size_t>(h)];
    const sim::Ns dt = now - hs.last_advance;
    if (dt <= 0.0) {
      hs.last_advance = now;
      return;
    }
    // The factor is constant over (last_advance, now): every fault
    // transition advances all hosts before the injector mutates state.
    const double factor = host_factor(h, hs.last_advance);
    hs.last_advance = now;
    if (hs.inflight.empty() || factor <= 0.0) return;
    if (config_.service_model == ServiceModel::kCoarse) {
      // Processor sharing against the class-summary capacity: every
      // in-flight request gets an equal slice, no per-request solve.
      const double per_req =
          hs.coarse_capacity * factor /
          static_cast<double>(hs.inflight.size());
      for (Request* req : hs.inflight) {
        req->remaining -= per_req * dt / 8.0;
      }
      return;
    }
    const auto& rates = hs.tb->machine().solver().solve();
    for (Request* req : hs.inflight) {
      // Gbps -> bytes/ns is a /8 (bits/ns == Gbps).
      req->remaining -= rates[req->flow] * factor * dt / 8.0;
    }
  }

  /// Schedules the host's next flow completion (earliest projected finish
  /// under the current rates and capacity factor) as a lane event on the
  /// host's lane. With completion_grid > 0 the alarm rounds up to the
  /// next grid instant so completions across hosts share rounds.
  void reproject(int h, sim::Ns now) {
    HostState& hs = hosts_[static_cast<std::size_t>(h)];
    const std::uint64_t generation = ++hs.projection;
    const double factor = host_factor(h, now);
    if (hs.inflight.empty() || factor <= 0.0) return;
    sim::Ns eta = std::numeric_limits<double>::infinity();
    if (config_.service_model == ServiceModel::kCoarse) {
      const double bytes_per_ns =
          hs.coarse_capacity * factor /
          static_cast<double>(hs.inflight.size()) / 8.0;
      if (bytes_per_ns <= 0.0) return;
      for (const Request* req : hs.inflight) {
        const sim::Ns tt = std::max(req->remaining, 0.0) / bytes_per_ns;
        eta = std::min(eta, tt);
      }
    } else {
      const auto& rates = hs.tb->machine().solver().solve();
      for (const Request* req : hs.inflight) {
        const double bytes_per_ns = rates[req->flow] * factor / 8.0;
        if (bytes_per_ns <= 0.0) continue;
        const sim::Ns tt = std::max(req->remaining, 0.0) / bytes_per_ns;
        eta = std::min(eta, tt);
      }
    }
    if (!std::isfinite(eta)) return;
    sim::Ns at = now + eta;
    if (config_.completion_grid > 0.0) {
      at = std::ceil(at / config_.completion_grid) * config_.completion_grid;
      at = std::max(at, now);
    }
    engine_.schedule_lane(h, at, kProjectionEvent, 0, 0, generation);
  }

  /// Lane side of a completion alarm: runs on the host's event lane,
  /// possibly concurrently with other lanes. Touches only this host's
  /// state — integrate progress, park finished requests — and leaves all
  /// publication (traces, metrics, breaker, re-dispatch) to on_merge.
  void on_lane_event(int h, const sim::ShardedEventEngine::LaneEvent& ev) {
    if (ev.kind != kProjectionEvent) return;
    HostState& hs = hosts_[static_cast<std::size_t>(h)];
    if (hs.projection != ev.gen) return;  // superseded alarm
    advance_host(h, ev.at);
    hs.due = true;
    for (Request* req : hs.inflight) {
      if (req->remaining <= kDoneBytes) hs.finished.push_back(req);
    }
  }

  /// Merge barrier after each lane round: commits every due host's
  /// finished requests in host order (worker-count invariant), reprojects
  /// the survivors, then re-dispatches freed capacity once.
  void on_merge(sim::Ns now) {
    bool any = false;
    for (int h = 0; h < config_.num_hosts; ++h) {
      HostState& hs = hosts_[static_cast<std::size_t>(h)];
      if (!hs.due) continue;
      hs.due = false;
      any = true;
      for (Request* req : hs.finished) complete_request(*req, now);
      hs.finished.clear();
      reproject(h, now);
    }
    if (any) try_dispatch(now);
  }

  // --- attempt lifecycle -------------------------------------------------
  void detach_attempt(Request& req) {
    HostState& hs = hosts_[static_cast<std::size_t>(req.host)];
    if (config_.service_model != ServiceModel::kCoarse) {
      hs.tb->machine().solver().remove_flow(req.flow);
      hs.sched->note_finish(req.node);
    }
    hs.inflight.erase(
        std::find(hs.inflight.begin(), hs.inflight.end(), &req));
    req.inflight = false;
    ++req.generation;
  }

  void start_attempt(Request& req, int h, bool probe, sim::Ns now) {
    HostState& hs = hosts_[static_cast<std::size_t>(h)];
    advance_host(h, now);
    ++req.attempts;
    ++req.generation;
    req.probe = probe;
    req.host = h;
    ++dispatches_;
    last_dispatch_ = now;
    if (obs_ != nullptr) obs_->metrics.add(m_dispatches_);

    if (injector_ != nullptr && injector_->host_crashed(h, now)) {
      // Connection refused: the control plane learns instantly, the
      // breaker counts it, and the request follows the retry path.
      emit("fleet.dispatch", req, "refused", fault_cause(), now);
      hs.breaker.on_failure(now, probe, "crash");
      handle_attempt_failure(req, now, fault_cause());
      return;
    }

    if (config_.service_model == ServiceModel::kCoarse) {
      // Coarse service: no per-request solver flow. Node choice is a
      // round-robin over the host's SKU classification's class-1 nodes —
      // the per-node distinction the fluid model resolves is below the
      // resolution the coarse capacity models.
      req.node = (*hs.serve_nodes)[node_rr_++ % hs.serve_nodes->size()];
    } else {
      const std::string engine_name(req.engine);
      req.node = hs.sched->place_request(engine_name, req.id, now);
      hs.sched->note_start(req.node);
      io::StreamSpec spec;
      spec.device = &hs.tb->nic();
      spec.engine = engine_name;
      spec.cpu_node = req.node;
      spec.mem_node = req.node;
      const io::StreamShape shape = io::shape_stream(hs.tb->machine(), spec);
      req.flow =
          hs.tb->machine().solver().add_flow(shape.usages, shape.rate_cap);
    }
    req.remaining = static_cast<double>(req.bytes);
    req.inflight = true;
    hs.inflight.push_back(&req);
    if (req.attempts == 1) {
      const sim::Ns wait = now - req.admitted_at;
      placement_lat_.push_back(wait);
      if (obs_ != nullptr) obs_->metrics.observe(h_placement_ms_, wait / 1e6);
    }
    emit("fleet.dispatch", req, "started", 0, now);

    const sim::Ns timeout_at =
        config_.retry.timeout > 0.0
            ? std::min(now + config_.retry.timeout, req.deadline_at)
            : req.deadline_at;
    const int generation = req.generation;
    const int id = req.id;
    engine_.schedule_at(timeout_at, [this, id, generation] {
      Request& r = requests_[static_cast<std::size_t>(id)];
      if (r.done || !r.inflight || r.generation != generation) return;
      on_attempt_timeout(r);
    });
    reproject(h, now);
  }

  void on_attempt_timeout(Request& req) {
    const sim::Ns now = engine_.now();
    const int h = req.host;
    advance_host(h, now);
    detach_attempt(req);
    reproject(h, now);
    HostState& hs = hosts_[static_cast<std::size_t>(h)];
    const bool fault_active =
        injector_ != nullptr &&
        (injector_->host_crashed(h, now) || injector_->host_hung(h, now) ||
         injector_->host_capacity_factor(h, now) < 1.0);
    const obs::EventId cause = fault_active ? fault_cause() : 0;
    if (obs_ != nullptr) obs_->metrics.add(m_timeouts_);
    emit("fleet.timeout", req, "timeout", cause, now);
    hs.breaker.on_failure(now, req.probe, "timeout");
    handle_attempt_failure(req, now, cause);
    try_dispatch(now);
  }

  void handle_attempt_failure(Request& req, sim::Ns now, obs::EventId cause) {
    TenantRuntime& tenant = tenant_of(req);
    if (now >= req.deadline_at - kTimeEps) {
      fail_request(req, now, "deadline", cause);
      return;
    }
    if (req.attempts > config_.retry.max_retries) {
      fail_request(req, now, "retries", cause);
      return;
    }
    int& retry_budget = shards_.retry_budget(req.tenant);
    if (retry_budget <= 0) {
      fail_request(req, now, "retry-budget", cause);
      return;
    }
    --retry_budget;
    ++tenant.stats.retries;
    ++retries_;
    if (obs_ != nullptr) obs_->metrics.add(m_retries_);
    const sim::Ns delay =
        sim::backoff_delay(config_.retry, req.attempts, backoff_rng_);
    if (now + delay >= req.deadline_at - kTimeEps) {
      fail_request(req, now, "deadline", cause);
      return;
    }
    emit("fleet.retry", req, "backoff", cause, now);
    const int id = req.id;
    const int generation = ++req.generation;
    engine_.schedule_at(now + delay, [this, id, generation] {
      Request& r = requests_[static_cast<std::size_t>(id)];
      if (r.done || r.generation != generation) return;
      enqueue(r, engine_.now());
      try_dispatch(engine_.now());
    });
  }

  void complete_request(Request& req, sim::Ns now) {
    detach_attempt(req);
    req.done = true;
    TenantRuntime& tenant = tenant_of(req);
    const sim::Ns latency = now - req.submit;
    ++tenant.stats.completed;
    tenant.latencies.push_back(latency);
    all_latencies_.push_back(latency);
    hosts_[static_cast<std::size_t>(req.host)].breaker.on_success(
        now, latency, req.probe);
    if (obs_ != nullptr) {
      obs_->metrics.add(m_completed_);
      obs_->metrics.observe(h_latency_ms_, latency / 1e6);
    }
    emit("fleet.complete", req, "ok", 0, now);
  }

  void fail_request(Request& req, sim::Ns now, const char* reason,
                    obs::EventId cause) {
    req.done = true;
    ++req.generation;
    ++tenant_of(req).stats.failed;
    if (obs_ != nullptr) obs_->metrics.add(m_failed_);
    emit("fleet.fail", req, reason, cause, now);
  }

  // --- admission / queue -------------------------------------------------
  void shed_request(Request& req, sim::Ns now) {
    req.queued = false;
    req.done = true;
    ++req.generation;
    ++tenant_of(req).stats.shed;
    if (obs_ != nullptr) obs_->metrics.add(m_shed_);
    emit("fleet.shed", req, "shed", fault_cause(), now);
  }

  void enqueue(Request& req, sim::Ns now) {
    const QueueSet::PushResult result =
        queue_.push(QueueItem{req.id, req.priority, req.tenant});
    if (result.shed) {
      Request& victim =
          requests_[static_cast<std::size_t>(result.victim.request)];
      shed_request(victim, now);
    }
    if (result.accepted && !(result.shed && result.victim.request == req.id)) {
      req.queued = true;
    }
    note_queue_depth();
  }

  void on_arrival(int t, sim::Ns now) {
    TenantRuntime& tenant = tenants_[static_cast<std::size_t>(t)];
    const TenantSpec& spec = specs_[static_cast<std::size_t>(t)];
    requests_.emplace_back();
    Request& req = requests_.back();
    req.id = static_cast<int>(requests_.size()) - 1;
    req.tenant = t;
    req.priority = spec.priority;
    req.submit = now;
    req.bytes = spec.request_bytes;
    req.engine =
        workload_rng_.below(2) == 0 ? io::kTcpSend : io::kTcpRecv;
    ++tenant.stats.submitted;
    if (obs_ != nullptr) obs_->metrics.add(m_requests_);

    if (config_.batch_window > 0.0) {
      // Batched admission: park the arrival until the epoch boundary.
      batch_ids_.push_back(req.id);
      arm_epoch(now);
    } else {
      const Status verdict = admission_status(
          shards_.bucket(t).try_take(now), "tenant quota exceeded");
      finish_admission(req, now, verdict.ok(), /*batched=*/false);
      if (verdict.ok()) try_dispatch(now);
    }
    schedule_arrival(t, now);
  }

  /// Applies one admission verdict: stats, metrics, the deadline event,
  /// and the queue push. Per-request mode also emits the fleet.admit /
  /// fleet.reject event; a batched epoch covers its whole burst with one
  /// fleet.admit_batch span instead. The deadline anchors to the
  /// original submit time, so batching never extends a deadline.
  void finish_admission(Request& req, sim::Ns now, bool admitted,
                        bool batched) {
    TenantRuntime& tenant = tenant_of(req);
    if (!admitted) {
      req.done = true;
      ++tenant.stats.rejected_quota;
      if (obs_ != nullptr) obs_->metrics.add(m_rejected_);
      if (!batched) {
        emit("fleet.reject", req,
             status_code_name(StatusCode::kOverloaded), 0, now);
      }
      return;
    }
    ++tenant.stats.admitted;
    if (obs_ != nullptr) obs_->metrics.add(m_admitted_);
    req.deadline_at = req.submit + config_.deadline;
    req.admitted_at = now;
    if (!batched) emit("fleet.admit", req, "admitted", 0, now);
    const int id = req.id;
    engine_.schedule_at(req.deadline_at, [this, id] {
      Request& r = requests_[static_cast<std::size_t>(id)];
      // In-flight attempts carry their own deadline-clamped timeout.
      if (r.done || r.inflight) return;
      if (r.queued) {
        queue_.remove(r.id, r.tenant);
        r.queued = false;
        note_queue_depth();
      }
      fail_request(r, engine_.now(), "deadline", 0);
    });
    enqueue(req, now);
  }

  /// Schedules the next epoch drain at the next multiple of the batch
  /// window (fixed grid, so epoch boundaries — and the traces they emit
  /// — do not depend on which arrival armed them).
  void arm_epoch(sim::Ns now) {
    if (epoch_armed_) return;
    epoch_armed_ = true;
    const double w = config_.batch_window;
    const sim::Ns at = (std::floor(now / w) + 1.0) * w;
    engine_.schedule_at(at, [this] { drain_epoch(engine_.now()); });
  }

  /// Drains one admission epoch: all parked arrivals get their quota
  /// verdicts in one sharded sweep (fleet/shard.h), then verdicts apply
  /// in arrival order on this thread — trace bytes are invariant to the
  /// shard count. One span replaces per-request admit/reject events.
  void drain_epoch(sim::Ns now) {
    epoch_armed_ = false;
    if (batch_ids_.empty()) return;
    const std::size_t count = batch_ids_.size();
    obs::SpanId span = 0;
    if (trace() != nullptr) {
      obs::EventFields fields;
      fields.t_sim = now;
      fields.bytes = static_cast<long long>(count);
      // The shard count stays out of the detail string on purpose: trace
      // bytes are contracted to be invariant to it (DESIGN.md §12).
      const std::string detail = std::to_string(count) + " arrivals";
      fields.detail = detail;
      span = trace()->begin_span("fleet.admit_batch", run_span_, fields);
    }
    arrivals_.clear();
    for (const int id : batch_ids_) {
      const Request& req = requests_[static_cast<std::size_t>(id)];
      // Buckets refill to the original submit time: verdicts match what
      // the per-request path would have said at arrival.
      arrivals_.push_back(ShardSet::Arrival{req.tenant, req.submit});
    }
    shards_.admit_batch(arrivals_, verdicts_, pool_.get());
    long long admitted = 0;
    for (std::size_t i = 0; i < count; ++i) {
      Request& req = requests_[static_cast<std::size_t>(batch_ids_[i])];
      const bool ok = verdicts_[i] != 0;
      finish_admission(req, now, ok, /*batched=*/true);
      if (ok) ++admitted;
    }
    batch_ids_.clear();
    if (obs_ != nullptr) {
      obs_->metrics.add(m_batch_epochs_);
      obs_->metrics.observe(h_batch_arrivals_, static_cast<double>(count));
      obs_->metrics.add(m_batch_admitted_, static_cast<double>(admitted));
      obs_->metrics.add(m_batch_rejected_,
                        static_cast<double>(count) -
                            static_cast<double>(admitted));
    }
    if (trace() != nullptr) {
      obs::EventFields fields;
      fields.t_sim = now;
      fields.bytes = admitted;
      trace()->end_span(span, "ok", fields);
    }
    try_dispatch(now);
  }

  void schedule_arrival(int t, sim::Ns now) {
    TenantRuntime& tenant = tenants_[static_cast<std::size_t>(t)];
    const TenantSpec& spec = specs_[static_cast<std::size_t>(t)];
    if (spec.arrival_rate_per_s <= 0.0) return;
    // Poisson arrivals: exponential inter-arrival gap.
    const double u = tenant.arrivals.uniform();
    const sim::Ns gap =
        -std::log(1.0 - u) / spec.arrival_rate_per_s * 1e9;
    const sim::Ns at = now + gap;
    if (at >= config_.horizon) return;
    engine_.schedule_at(at, [this, t] { on_arrival(t, engine_.now()); });
  }

  // --- dispatch ----------------------------------------------------------
  /// Rebuilds the class placer's host-class table from coarse summaries
  /// (capacity under the current fault factor, free slots, breaker
  /// admission, windowed p99). Called lazily from pick_host when the
  /// table is past its staleness bound — never per dispatch.
  void refresh_summaries(sim::Ns now) {
    summaries_.clear();
    for (int h = 0; h < config_.num_hosts; ++h) {
      const HostState& hs = hosts_[static_cast<std::size_t>(h)];
      HostSummary s;
      s.capacity_gbps = hs.coarse_capacity * host_factor(h, now);
      s.free_slots = config_.max_inflight_per_host -
                     static_cast<int>(hs.inflight.size());
      s.admitting = hs.breaker.can_accept(now);
      s.window_p99 = hs.breaker.window_p99();
      summaries_.push_back(s);
    }
    placer_.refresh(summaries_, now);
    if (obs_ != nullptr) {
      obs_->metrics.add(m_summary_refreshes_);
      obs_->metrics.set(g_class_count_, placer_.num_classes());
    }
  }

  /// Host choice. kLeastLoaded: least in-flight among hosts with a free
  /// slot whose breaker admits (ties: lowest index). kClassSpread: the
  /// paper-§VI placer — round-robin across capacity classes, least
  /// loaded within one. -1 when none.
  int pick_host(sim::Ns now) {
    if (config_.placement == PlacementPolicy::kClassSpread) {
      if (placer_.stale(now)) refresh_summaries(now);
      scratch_load_.clear();
      for (const HostState& hs : hosts_) {
        scratch_load_.push_back(static_cast<int>(hs.inflight.size()));
      }
      const long long spread0 = placer_.spread_picks();
      const long long fallback0 = placer_.fallback_picks();
      const int pick =
          placer_.pick(scratch_load_, [this, now](int h) {
            const HostState& hs = hosts_[static_cast<std::size_t>(h)];
            return static_cast<int>(hs.inflight.size()) <
                       config_.max_inflight_per_host &&
                   hs.breaker.can_accept(now);
          });
      if (obs_ != nullptr) {
        obs_->metrics.add(
            m_place_spread_,
            static_cast<double>(placer_.spread_picks() - spread0));
        obs_->metrics.add(
            m_place_fallback_,
            static_cast<double>(placer_.fallback_picks() - fallback0));
      }
      return pick;
    }
    int best = -1;
    for (int h = 0; h < config_.num_hosts; ++h) {
      const HostState& hs = hosts_[static_cast<std::size_t>(h)];
      if (static_cast<int>(hs.inflight.size()) >=
          config_.max_inflight_per_host) {
        continue;
      }
      if (!hs.breaker.can_accept(now)) continue;
      if (best < 0 ||
          hs.inflight.size() <
              hosts_[static_cast<std::size_t>(best)].inflight.size()) {
        best = h;
      }
    }
    return best;
  }

  void try_dispatch(sim::Ns now) {
    while (!queue_.empty()) {
      const int h = pick_host(now);
      if (h < 0) {
        schedule_dispatch_wakeup(now);
        return;
      }
      const QueueItem item = queue_.pop();
      note_queue_depth();
      Request& req = requests_[static_cast<std::size_t>(item.request)];
      req.queued = false;
      if (now >= req.deadline_at - kTimeEps) {
        fail_request(req, now, "deadline", 0);
        continue;
      }
      bool probe = false;
      HostState& hs = hosts_[static_cast<std::size_t>(h)];
      if (!hs.breaker.try_acquire(now, &probe)) {
        // can_accept previewed true, so this is unreachable in practice;
        // never lose the request regardless.
        enqueue(req, now);
        return;
      }
      start_attempt(req, h, probe, now);
    }
  }

  /// When every host refuses, wake up when the earliest breaker cooldown
  /// elapses (probe time); completions and fault transitions re-dispatch
  /// on their own.
  void schedule_dispatch_wakeup(sim::Ns now) {
    sim::Ns earliest = std::numeric_limits<double>::infinity();
    for (const HostState& hs : hosts_) {
      if (hs.breaker.state() == BreakerState::kOpen) {
        earliest = std::min(earliest, hs.breaker.reopen_at());
      }
    }
    if (!std::isfinite(earliest)) return;
    earliest = std::max(earliest, now);
    if (dispatch_wakeup_at_ <= earliest + kTimeEps &&
        dispatch_wakeup_at_ > now) {
      return;  // an earlier-or-equal wakeup is already pending
    }
    dispatch_wakeup_at_ = earliest;
    engine_.schedule_at(earliest, [this, earliest] {
      if (dispatch_wakeup_at_ != earliest) return;
      dispatch_wakeup_at_ = -1.0;
      try_dispatch(engine_.now());
    });
  }

  // --- faults ------------------------------------------------------------
  void on_host_crash(int h, sim::Ns at) {
    HostState& hs = hosts_[static_cast<std::size_t>(h)];
    hs.breaker.trip(at, "crash");
    // Fail over everything in flight: the requests survive, the host's
    // work does not. Re-placement does not burn the tenants' retry budget
    // (the fleet, not the tenant, is at fault) but the deadline still
    // stands.
    std::vector<Request*> doomed = hs.inflight;
    for (Request* req : doomed) {
      detach_attempt(*req);
      ++replaced_;
      if (obs_ != nullptr) obs_->metrics.add(m_replaced_);
      emit("fleet.replace", *req, "replaced", fault_cause(), at);
      enqueue(*req, at);
    }
    ++hs.projection;  // cancel any pending completion projection
  }

  void on_breaker_transition(int h, BreakerState from, BreakerState to,
                             sim::Ns at, const char* reason) {
    if (to == BreakerState::kOpen) {
      ++breaker_trips_;
      if (obs_ != nullptr) obs_->metrics.add(m_trips_);
    }
    if (obs_ != nullptr) {
      int open = 0;
      for (const HostState& hs : hosts_) {
        if (hs.breaker.state() != BreakerState::kClosed) ++open;
      }
      obs_->metrics.set(g_breakers_open_, open);
    }
    if (trace() == nullptr) return;
    obs::EventFields fields;
    fields.t_sim = at;
    fields.node_a = h;
    const std::string detail = std::string("host ") + std::to_string(h) +
                               " " + to_string(from) + "->" + to_string(to) +
                               " (" + reason + ")";
    fields.detail = detail;
    // Trips and recoveries cite the fault transition that drove them.
    trace()->event("fleet.breaker", run_span_, fault_cause(), to_string(to),
                   fields);
  }

  void arm_fault_steps(sim::Ns after) {
    if (injector_ == nullptr) return;
    const sim::Ns next = injector_->next_transition_after(after);
    if (!std::isfinite(next)) return;
    engine_.schedule_at(next, [this, next] {
      // Progress every host under pre-transition rates, then mutate.
      for (int h = 0; h < config_.num_hosts; ++h) advance_host(h, next);
      injector_->advance_to(next);
      for (int h = 0; h < config_.num_hosts; ++h) reproject(h, next);
      try_dispatch(next);
      arm_fault_steps(next);
    });
  }

  // --- reporting ---------------------------------------------------------
  FleetReport build_report(sim::Ns makespan) {
    FleetReport report;
    report.makespan = makespan;
    const double horizon_s = config_.horizon / 1e9;
    for (TenantRuntime& tenant : tenants_) {
      TenantStats stats = tenant.stats;
      if (!tenant.latencies.empty()) {
        stats.latency_p50 = sim::percentile(tenant.latencies, 0.5);
        stats.latency_p99 = sim::percentile(tenant.latencies, 0.99);
      }
      if (horizon_s > 0.0) {
        stats.goodput_rps =
            static_cast<double>(stats.completed) / horizon_s;
      }
      report.submitted += stats.submitted;
      report.admitted += stats.admitted;
      report.rejected_quota += stats.rejected_quota;
      report.shed += stats.shed;
      report.completed += stats.completed;
      report.failed += stats.failed;
      report.retries += stats.retries;
      report.tenants.push_back(std::move(stats));
    }
    report.replaced = replaced_;
    report.dispatches = dispatches_;
    report.breaker_trips = breaker_trips_;
    report.max_queue_depth = max_queue_depth_;
    // Rate the scheduler over its active span: the engine keeps draining
    // guard events (deadline checks for long-finished requests) for a
    // whole deadline past the final arrival, and that silent tail is not
    // scheduling time.
    const sim::Ns active = last_dispatch_ > 0.0 ? last_dispatch_ : makespan;
    if (active > 0.0) {
      report.attempts_per_s =
          static_cast<double>(dispatches_) / (active / 1e9);
    }
    if (report.submitted > 0) {
      report.shed_fraction = static_cast<double>(report.shed) /
                             static_cast<double>(report.submitted);
    }
    if (!all_latencies_.empty()) {
      report.accepted_p50 = sim::percentile(all_latencies_, 0.5);
      report.accepted_p99 = sim::percentile(all_latencies_, 0.99);
      report.accepted_p999 = sim::percentile(all_latencies_, 0.999);
    }
    if (!placement_lat_.empty()) {
      report.placement_p50 = sim::percentile(placement_lat_, 0.5);
      report.placement_p99 = sim::percentile(placement_lat_, 0.99);
    }
    report.queue_steals = queue_.cross_shard_steals();
    report.max_shard_depth = queue_.max_shard_depth();
    report.lane_rounds = engine_.lane_rounds();
    report.lane_parallel_batches = engine_.parallel_batches();
    if (obs_ != nullptr) {
      obs_->metrics.set(
          g_goodput_,
          horizon_s > 0.0 ? static_cast<double>(report.completed) / horizon_s
                          : 0.0);
      obs_->metrics.set(g_queue_shards_, queue_.num_shards());
      obs_->metrics.add(m_shard_steals_,
                        static_cast<double>(queue_.cross_shard_steals()));
      obs_->metrics.set(g_shard_max_depth_, queue_.max_shard_depth());
      obs_->metrics.set(g_lanes_, engine_.num_lanes());
      obs_->metrics.add(m_lane_events_,
                        static_cast<double>(engine_.lane_events_fired()));
      obs_->metrics.add(m_lane_rounds_,
                        static_cast<double>(engine_.lane_rounds()));
      obs_->metrics.add(m_lane_parallel_,
                        static_cast<double>(engine_.parallel_batches()));
    }
    return report;
  }

  const FleetConfig& config_;
  const std::vector<TenantSpec>& specs_;
  obs::Context* obs_;
  /// Shared fork-join pool (admission drains + lane rounds). Declared
  /// before engine_, which captures the raw pointer at construction.
  std::unique_ptr<sim::ThreadPool> pool_;
  sim::ShardedEventEngine engine_;
  std::vector<HostState> hosts_;
  std::vector<TenantRuntime> tenants_;
  /// Request arena: deque for stable addresses with chunked allocation
  /// (a scale run creates millions; one heap node per request was
  /// measurable). Event callbacks hold (id, generation) pairs.
  std::deque<Request> requests_;
  QueueSet queue_;
  ShardSet shards_;
  ClassPlacer placer_;
  std::unique_ptr<faults::FaultInjector> injector_;
  sim::Rng backoff_rng_;
  sim::Rng workload_rng_;
  // Batched-admission epoch state (batch_window > 0).
  std::vector<int> batch_ids_;  ///< Arrivals parked until the next drain.
  bool epoch_armed_ = false;
  std::vector<ShardSet::Arrival> arrivals_;   ///< Scratch per epoch.
  std::vector<unsigned char> verdicts_;       ///< Scratch per epoch.
  // Coarse service model / class placement state, per SKU (0 = DL585,
  // 1 = lite).
  double coarse_capacity_[2] = {0.0, 0.0};  ///< Gbps an unloaded host serves.
  std::vector<topo::NodeId> serve_nodes_[2];  ///< Class-1 nodes (rr).
  std::size_t node_rr_ = 0;
  std::vector<HostSummary> summaries_;  ///< Scratch per refresh.
  std::vector<int> scratch_load_;       ///< Scratch per pick.
  std::vector<double> placement_lat_;   ///< Admission -> first dispatch.
  obs::SpanId run_span_ = 0;
  sim::Ns dispatch_wakeup_at_ = -1.0;
  long long dispatches_ = 0;
  sim::Ns last_dispatch_ = 0.0;  ///< When the final attempt started.
  long long retries_ = 0;
  long long replaced_ = 0;
  int breaker_trips_ = 0;
  int max_queue_depth_ = 0;
  std::vector<double> all_latencies_;

  obs::MetricsRegistry::Id m_requests_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_admitted_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_rejected_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_shed_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_dispatches_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_timeouts_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_retries_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_replaced_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_completed_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_failed_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_trips_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id g_queue_depth_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id g_breakers_open_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id g_goodput_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id h_latency_ms_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_batch_epochs_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_batch_admitted_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_batch_rejected_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id h_batch_arrivals_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id h_placement_ms_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_place_spread_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_place_fallback_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_summary_refreshes_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id g_class_count_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id g_queue_shards_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_shard_steals_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id g_shard_max_depth_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id g_lanes_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_lane_events_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_lane_rounds_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_lane_parallel_ = obs::MetricsRegistry::kNone;
};

FleetReport FleetRuntime::run() {
  if (trace() != nullptr) {
    obs::EventFields fields;
    // The engine starts at simulated t = 0; stamping the begin makes the
    // span foldable (obs/profile.h) — an untimed begin would drop the
    // whole run from the flame.
    fields.t_sim = 0.0;
    const std::string detail = std::to_string(config_.num_hosts) +
                               " hosts, " +
                               std::to_string(specs_.size()) + " tenants";
    fields.detail = detail;
    run_span_ = trace()->begin_span("fleet.run", 0, fields);
  }
  for (int t = 0; t < static_cast<int>(specs_.size()); ++t) {
    schedule_arrival(t, 0.0);
  }
  arm_fault_steps(-1.0);
  const sim::Ns makespan = engine_.run();
  if (injector_ != nullptr) injector_->restore();
  FleetReport report = build_report(makespan);
  if (trace() != nullptr) {
    obs::EventFields fields;
    fields.t_sim = makespan;
    fields.bytes = report.completed;
    trace()->end_span(run_span_, "ok", fields);
  }
  return report;
}

}  // namespace

FleetReport FleetSim::run() {
  FleetRuntime runtime(config_, tenants_, plan_, obs_);
  return runtime.run();
}

std::string FleetReport::summary() const {
  std::string out;
  char buf[200];
  std::snprintf(buf, sizeof buf, "%-8s %4s %9s %9s %8s %6s %9s %6s %8s %8s\n",
                "tenant", "prio", "submitted", "admitted", "rejected",
                "shed", "completed", "failed", "p50 ms", "p99 ms");
  out += buf;
  for (const TenantStats& t : tenants) {
    std::snprintf(buf, sizeof buf,
                  "%-8s %4d %9lld %9lld %8lld %6lld %9lld %6lld %8.1f %8.1f\n",
                  t.name.c_str(), t.priority, t.submitted, t.admitted,
                  t.rejected_quota, t.shed, t.completed, t.failed,
                  t.latency_p50 / 1e6, t.latency_p99 / 1e6);
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "total: %lld submitted, %lld completed, %lld shed "
                "(%.1f%%), %lld failed, %lld retries, %lld replaced\n",
                submitted, completed, shed, shed_fraction * 100.0, failed,
                retries, replaced);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "dispatch: %.0f attempts/s, accepted p50 %.1f ms / p99 %.1f "
                "ms / p99.9 %.1f ms, max queue %d, %d breaker trips, "
                "placement p99 %.2f ms\n",
                attempts_per_s, accepted_p50 / 1e6, accepted_p99 / 1e6,
                accepted_p999 / 1e6, max_queue_depth, breaker_trips,
                placement_p99 / 1e6);
  out += buf;
  return out;
}

StormScenario make_storm(int num_hosts, int num_tenants, double offered_rps,
                         std::uint64_t seed, sim::Ns horizon) {
  StormScenario storm;
  storm.config.num_hosts = num_hosts;
  storm.config.seed = seed;
  storm.config.horizon = horizon;
  storm.config.queue_depth = 48;
  storm.config.deadline = 0.6e9;
  storm.config.retry.max_retries = 2;
  storm.config.retry.timeout = 0.2e9;
  storm.config.breaker.failure_threshold = 3;
  storm.config.breaker.open_cooldown = 0.4e9;
  storm.config.breaker.probe_successes = 2;

  // Ascending priorities; the lowest-priority tenant carries the largest
  // share of the offered load, so shedding it first frees the most.
  double weight_sum = 0.0;
  for (int t = 0; t < num_tenants; ++t) {
    weight_sum += static_cast<double>(num_tenants - t);
  }
  for (int t = 0; t < num_tenants; ++t) {
    TenantSpec spec;
    spec.name = "t";
    spec.name += std::to_string(t);
    spec.priority = t;
    const double share =
        static_cast<double>(num_tenants - t) / weight_sum;
    spec.arrival_rate_per_s = offered_rps * share;
    spec.quota_rate_per_s = spec.arrival_rate_per_s * 1.25;
    spec.quota_burst = 16.0;
    spec.retry_budget = 24;
    spec.request_bytes = 16 * sim::kMiB;
    storm.tenants.push_back(std::move(spec));
  }

  // One host dies mid-run and comes back at half capacity while it warms
  // its caches and rebuilds connections.
  const int victim = num_hosts > 1 ? 1 : 0;
  faults::FaultEvent crash;
  crash.kind = faults::FaultKind::kHostCrash;
  crash.host = victim;
  crash.start = 0.30 * horizon;
  crash.duration = 0.25 * horizon;
  storm.plan.add(crash);
  faults::FaultEvent recover;
  recover.kind = faults::FaultKind::kHostRecover;
  recover.host = victim;
  recover.start = crash.start + crash.duration;
  recover.duration = 0.20 * horizon;
  recover.severity = 0.5;
  storm.plan.add(recover);
  return storm;
}

StormScenario make_scale_storm(int num_hosts, int num_tenants,
                               double offered_rps, std::uint64_t seed,
                               sim::Ns horizon) {
  StormScenario storm;
  storm.config.num_hosts = num_hosts;
  storm.config.seed = seed;
  storm.config.horizon = horizon;
  // Scale knobs: deep queue, wide per-host concurrency, small requests,
  // tight deadlines — a key-value / RPC fleet, not a bulk-transfer one.
  storm.config.queue_depth = 512;
  storm.config.max_inflight_per_host = 64;
  storm.config.deadline = 0.25e9;
  storm.config.retry.max_retries = 2;
  storm.config.retry.timeout = 0.08e9;
  storm.config.retry.base_backoff = 1.0e6;
  storm.config.retry.max_backoff = 0.02e9;
  storm.config.breaker.failure_threshold = 8;
  storm.config.breaker.open_cooldown = 0.05e9;
  // The ISSUE 9 request path: batched admission over sharded tenant
  // state, coarse service, class-spread placement.
  storm.config.shards = 8;
  storm.config.batch_window = 2.0e6;
  storm.config.service_model = ServiceModel::kCoarse;
  storm.config.placement = PlacementPolicy::kClassSpread;
  storm.config.summary_refresh = 10.0e6;
  // The ISSUE 10 additions: sharded post-admission queue, per-host event
  // lanes with grid-aligned completion alarms (0.5 ms — a quarter of the
  // admission epoch, 1/500th of the deadline), and a mixed fleet (every
  // third host is the lite SKU) so gap_classes yields >1 class.
  storm.config.queue_shards = 8;
  storm.config.completion_grid = 0.5e6;
  storm.config.alt_sku_every = 3;

  const double per_tenant =
      offered_rps / static_cast<double>(num_tenants);
  for (int t = 0; t < num_tenants; ++t) {
    TenantSpec spec;
    spec.name = "t";
    spec.name += std::to_string(t);
    spec.priority = t % 4;
    spec.arrival_rate_per_s = per_tenant;
    spec.quota_rate_per_s = per_tenant * 1.5;
    spec.quota_burst = 8.0;
    spec.retry_budget = 8;
    spec.request_bytes = 256 * sim::kKiB;
    storm.tenants.push_back(std::move(spec));
  }

  const int victim = num_hosts > 1 ? 1 : 0;
  faults::FaultEvent crash;
  crash.kind = faults::FaultKind::kHostCrash;
  crash.host = victim;
  crash.start = 0.30 * horizon;
  crash.duration = 0.25 * horizon;
  storm.plan.add(crash);
  faults::FaultEvent recover;
  recover.kind = faults::FaultKind::kHostRecover;
  recover.host = victim;
  recover.start = crash.start + crash.duration;
  recover.duration = 0.20 * horizon;
  recover.severity = 0.5;
  storm.plan.add(recover);
  return storm;
}

}  // namespace numaio::fleet
