// Fleet serving core: N simulated hosts behind admission control, with
// overload shedding, bounded retries, per-host circuit breakers, and
// host-failure recovery.
//
// This is the first leg of the ROADMAP's fleet-scale item. Each host is a
// full DL585 testbed (fabric::Machine + nm::Host + NIC) fronted by a
// model::OnlineScheduler, so every request's service rate comes from the
// same max-min-fair FlowSolver contention math the paper's Eq. 1 predictor
// is validated against — an overloaded host slows *because* its NIC, HT
// links and memory controllers saturate, not because of a tuned constant.
//
// Control plane, in dispatch order:
//   admission  per-tenant token bucket (reject over-quota arrivals with a
//              kOverloaded Status — never block);
//   queue      bounded depth, lowest-priority-first shedding (admission.h);
//   placement  least-loaded host whose breaker admits, then the host's
//              OnlineScheduler picks the NUMA node (class-aware);
//   breaker    per-host closed/open/half-open machine (breaker.h), tripped
//              by consecutive failures, p99 breach, or an observed crash;
//   retries    per-attempt timeouts clamped to the request's absolute
//              deadline, exponential backoff with seeded jitter, and a
//              per-tenant retry *budget* so storms cannot amplify load.
//
// Host-level faults come from a faults::FaultPlan (kHostCrash / kHostHang
// / kHostRecover): a crash fails the host's in-flight requests, which are
// re-placed on surviving hosts citing the causing `fault.transition`
// record; a hang freezes progress until timeouts fire; recovery runs the
// host at reduced capacity. The degradation contract — bounded queue,
// lowest-priority-first sheds, accepted-request p99 <= deadline — is
// enforced by construction and asserted by tests/test_fleet.cpp.
//
// Determinism: all randomness (arrivals, request shapes, backoff jitter)
// forks from one seed; no wall clock is read. Two same-seed runs emit
// byte-identical deterministic traces.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "fleet/breaker.h"
#include "obs/obs.h"
#include "simcore/retry.h"
#include "simcore/solve_options.h"
#include "simcore/status.h"
#include "simcore/units.h"

namespace numaio::fleet {

/// One tenant of the fleet: an open-loop arrival stream with a quota and
/// a shed priority. Higher priority is shed later.
struct TenantSpec {
  std::string name;
  int priority = 0;
  double arrival_rate_per_s = 40.0;  ///< Mean offered load (Poisson).
  double quota_rate_per_s = 50.0;    ///< Token-bucket refill.
  double quota_burst = 16.0;         ///< Token-bucket depth.
  int retry_budget = 32;             ///< Total retries across the run.
  sim::Bytes request_bytes = 16 * sim::kMiB;
};

/// How requests are served on a host (DESIGN.md §12).
enum class ServiceModel {
  /// Full per-request fluid-flow simulation: every attempt is a solver
  /// flow and rates come from max-min-fair contention (PR 6 behavior).
  kFluid,
  /// Two-level model: requests share the host's class-summary capacity
  /// (processor sharing, no per-request solver flows) and node choice
  /// is a round-robin over the shared classification's class-1 nodes.
  /// This is what carries the fleet past 10^5 scheduled requests/s.
  kCoarse,
};

/// Cross-host placement policy (DESIGN.md §12).
enum class PlacementPolicy {
  /// Least in-flight across all hosts (PR 6 behavior).
  kLeastLoaded,
  /// Paper §VI: partition hosts into equal-performance classes via the
  /// gap classifier over cadence-refreshed capacity summaries, spread
  /// placements round-robin across classes, least-loaded within one.
  kClassSpread,
};

struct FleetConfig {
  int num_hosts = 4;
  int queue_depth = 64;
  int max_inflight_per_host = 8;
  /// Absolute completion deadline per admitted request; the accepted-p99
  /// bound of the degradation contract.
  sim::Ns deadline = 0.5e9;
  /// Per-attempt timeout / backoff. `timeout` 0 means attempts are only
  /// bounded by the absolute deadline.
  sim::RetryPolicy retry{
      /*max_retries=*/3, /*timeout=*/0.15e9, /*base_backoff=*/4.0e6,
      /*multiplier=*/2.0, /*jitter_frac=*/0.25, /*max_backoff=*/0.2e9};
  BreakerConfig breaker{};
  std::uint64_t seed = 1;
  /// Arrivals stop here; the run then drains (every pending request
  /// completes or hits its deadline).
  sim::Ns horizon = 10.0e9;
  /// Solver execution engine for every host's machine (threads / component
  /// partitioning; simcore/solve_options.h). The fleet owns its testbeds,
  /// so unlike model::OnlineConfig this is a concrete value: the default
  /// keeps the serial monolithic solver.
  sim::SolveOptions solve{};
  /// Admission sharding (DESIGN.md §12): per-tenant quota buckets and
  /// retry budgets split into this many tenant-hash-keyed shards, each
  /// with its own arena. Results — and deterministic trace bytes — are
  /// invariant to the shard count; shards only let a batched epoch fan
  /// the quota math across the deterministic sim::ThreadPool.
  int shards = 1;
  /// Batched admission: > 0 drains arrivals in epochs at fixed
  /// multiples of this window, emitting one `fleet.admit_batch` span
  /// per epoch instead of per-request admit/reject events. 0 keeps the
  /// per-request admission path byte-identical to PR 6. Must be
  /// shorter than `deadline`; quota verdicts refill to the original
  /// arrival instant, so they match the per-request path exactly.
  sim::Ns batch_window = 0.0;
  ServiceModel service_model = ServiceModel::kFluid;
  PlacementPolicy placement = PlacementPolicy::kLeastLoaded;
  /// kClassSpread summary staleness bound: host class summaries
  /// (capacity head-room, breaker state, windowed p99) refresh at most
  /// once per this much simulated time, pulled lazily at placement.
  sim::Ns summary_refresh = 50.0e6;
  /// Post-admission queue sharding (DESIGN.md §13): the bounded queue
  /// splits into this many tenant-hash-keyed arenas (fleet/queue_set.h)
  /// sharing one global depth bound and arrival order, with a two-level
  /// shed (local candidate, then a cross-shard steal pass). Pop and shed
  /// order — and therefore traces — are bit-identical to the single
  /// queue for any value.
  int queue_shards = 1;
  /// Event-lane drain workers (DESIGN.md §13): per-host completion
  /// alarms live on sim::ShardedEventEngine lanes (one per host) and
  /// due lanes drain as deterministic fork-join rounds across this many
  /// pool workers. 1 keeps every round serial — the reference path the
  /// parallel drains are property-tested against. Traces, verdicts and
  /// stats are invariant to this value by construction.
  int event_lanes = 1;
  /// 0 keeps the uniform DL585 fleet. k > 0 gives every k-th host
  /// (h % k == k - 1) the lite SKU (io::Testbed::dl585_lite — a
  /// previous-generation NIC with ~55% of the ConnectX-3's ceilings), so
  /// model::gap_classes sees genuinely mixed hardware and kClassSpread
  /// placement exercises >1 class.
  int alt_sku_every = 0;
  /// Completion-alarm quantization (DESIGN.md §13): > 0 rounds every
  /// projected flow-completion alarm up to the next multiple of this
  /// grid, so completions across hosts share instants and one fork-join
  /// round drains many lanes at once. A request occupies its slot until
  /// the grid instant (at most one grid step of added latency); 0 keeps
  /// exact per-completion alarms. Results are identical for any
  /// event_lanes value either way.
  sim::Ns completion_grid = 0.0;

  /// Typed validation of every knob above: ok() or kUsage with the
  /// offending field named. FleetSim's constructor throws the same
  /// Status via StatusError; callers wiring configs from flags can call
  /// this directly instead of catching.
  Status validate() const;
};

struct TenantStats {
  std::string name;
  int priority = 0;
  long long submitted = 0;
  long long admitted = 0;
  long long rejected_quota = 0;  ///< Token bucket said no (kOverloaded).
  long long shed = 0;            ///< Evicted from the bounded queue.
  long long completed = 0;
  long long failed = 0;          ///< Deadline / retries / budget exhausted.
  long long retries = 0;
  double goodput_rps = 0.0;      ///< Completions per simulated second.
  sim::Ns latency_p50 = 0.0;     ///< Over completed requests.
  sim::Ns latency_p99 = 0.0;
};

struct FleetReport {
  std::vector<TenantStats> tenants;
  long long submitted = 0;
  long long admitted = 0;
  long long rejected_quota = 0;
  long long shed = 0;
  long long completed = 0;
  long long failed = 0;
  long long retries = 0;
  long long replaced = 0;       ///< In-flight requests re-placed off a crash.
  long long dispatches = 0;     ///< Attempts started on a host.
  int breaker_trips = 0;
  int max_queue_depth = 0;
  double attempts_per_s = 0.0;  ///< Attempts over the active span (t = 0
                                ///< through the last dispatch), not the
                                ///< guard-event drain tail.
  double shed_fraction = 0.0;   ///< shed / submitted.
  sim::Ns accepted_p50 = 0.0;   ///< Latency percentiles over completions.
  sim::Ns accepted_p99 = 0.0;
  sim::Ns accepted_p999 = 0.0;  ///< Tail beyond p99 (storms live here).
  /// Placement latency: admission -> first dispatch, over requests that
  /// reached a host (the ROADMAP's fleet-scale p99 deliverable).
  sim::Ns placement_p50 = 0.0;
  sim::Ns placement_p99 = 0.0;
  sim::Ns makespan = 0.0;       ///< Simulated time when the run drained.
  /// Sharded-path counters (DESIGN.md §13).
  long long queue_steals = 0;   ///< Shed victims taken from another shard.
  int max_shard_depth = 0;      ///< Deepest any single queue shard got.
  long long lane_rounds = 0;    ///< Fork-join lane-drain rounds.
  long long lane_parallel_batches = 0;  ///< Rounds fanned across workers.

  /// Human-readable table (the CLI's `fleet` output).
  std::string summary() const;
};

/// Admission decision for one request, built on numaio::Status: ok() means
/// admitted; code kOverloaded carries the quota/queue rejection reason.
/// The fleet never blocks a caller — this is the typed "no".
Status admission_status(bool admitted, const std::string& reason);

class FleetSim {
 public:
  /// Throws StatusError(kUsage) on an empty tenant list or a non-positive
  /// host count.
  FleetSim(FleetConfig config, std::vector<TenantSpec> tenants);
  ~FleetSim();

  FleetSim(const FleetSim&) = delete;
  FleetSim& operator=(const FleetSim&) = delete;

  /// Host-level fault schedule (validated against num_hosts; machine-level
  /// kinds in the plan apply to host 0's machine).
  void set_fault_plan(faults::FaultPlan plan);

  /// Attaches an observability context (nullptr detaches). run() then
  /// opens a `fleet.run` span and emits fleet.admit / fleet.reject /
  /// fleet.shed / fleet.dispatch / fleet.timeout / fleet.retry /
  /// fleet.replace / fleet.fail / fleet.complete / fleet.breaker events,
  /// with shed/trip/replace/recovery decisions citing the causing
  /// `fault.transition` record id. Must outlive run().
  void set_observer(obs::Context* obs);

  /// Executes the whole simulated run to drain and reports. Reentrant:
  /// each call builds a fresh fleet.
  FleetReport run();

  const FleetConfig& config() const { return config_; }
  const std::vector<TenantSpec>& tenants() const { return tenants_; }

 private:
  FleetConfig config_;
  std::vector<TenantSpec> tenants_;
  faults::FaultPlan plan_;
  obs::Context* obs_ = nullptr;
};

/// The ISSUE's storm scenario, shared by the CLI, the bench and tests:
/// `num_tenants` tenants with ascending priorities splitting `offered_rps`
/// (lowest priority carries the largest share), plus one host crashing
/// mid-run and recovering at reduced capacity.
struct StormScenario {
  FleetConfig config;
  std::vector<TenantSpec> tenants;
  faults::FaultPlan plan;
};
StormScenario make_storm(int num_hosts, int num_tenants, double offered_rps,
                         std::uint64_t seed, sim::Ns horizon);

/// The ISSUE 9 scale scenario: thousands of small-request tenants over
/// the batched (2 ms epochs), sharded (8), coarse-service,
/// class-placed request path, with one host crashing mid-run and
/// recovering at half capacity. Small requests (256 KiB) put per-host
/// service capacity near 10^4 req/s, so the fleet clears >= 10^5
/// scheduled requests/s — the bench floor ci/perf_guard.sh gates.
StormScenario make_scale_storm(int num_hosts, int num_tenants,
                               double offered_rps, std::uint64_t seed,
                               sim::Ns horizon);

}  // namespace numaio::fleet
