// Admission control primitives for the fleet serving core: per-tenant
// token buckets and a bounded priority queue that sheds lowest-priority
// work instead of growing without bound.
//
// The paper's Eq. 1 predicts what an accepted multi-user load will get;
// admission control decides what gets accepted in the first place. Both
// primitives are pure simulated-time state machines (no wall clock), so
// fleet runs stay deterministic. The queue keeps its entries indexed by
// priority level (one FIFO per level), so push/pop/shed are O(log levels)
// instead of the O(depth) scans the first fleet cut paid — at six-figure
// offered rps with a full queue, those scans were the hottest loop in the
// whole fleet (ISSUE 10).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "simcore/units.h"

namespace numaio::fleet {

/// Classic token bucket in simulated time: `rate_per_s` tokens accrue per
/// simulated second up to `burst`; try_take spends one. Starts full.
class TokenBucket {
 public:
  TokenBucket(double rate_per_s, double burst)
      : rate_per_s_(rate_per_s), burst_(burst), tokens_(burst) {}

  /// Refills for the elapsed time, then takes one token if available.
  bool try_take(sim::Ns now);

  /// Token level after refilling to `now` (does not spend).
  double tokens(sim::Ns now);

 private:
  void refill(sim::Ns now);

  double rate_per_s_;
  double burst_;
  double tokens_;
  sim::Ns last_ = 0.0;
};

/// One queued admission ticket. `request` is an opaque caller-side id;
/// `tenant` keys the sharded QueueSet's shard choice (fleet/queue_set.h)
/// and is ignored by the single BoundedQueue.
struct QueueItem {
  int request = -1;
  int priority = 0;  ///< Higher survives longer; shedding starts lowest.
  int tenant = 0;
};

/// Priority-indexed FIFO: one arrival-ordered level per distinct priority.
/// The two ends the fleet cares about are both O(log levels): best() is
/// the pop order (highest priority, earliest sequence) and victim() is the
/// shed order (lowest priority, latest sequence). Sequence numbers are
/// assigned by the caller, so a sharded queue can thread one *global*
/// arrival order through many per-shard fifos and still recover the exact
/// single-queue pop/shed sequence (fleet/queue_set.h).
class PriorityFifo {
 public:
  struct Entry {
    QueueItem item;
    std::uint64_t seq = 0;
  };

  /// Appends `item` at its priority level. `seq` must be strictly greater
  /// than every sequence previously pushed at that priority.
  void push(QueueItem item, std::uint64_t seq);

  bool empty() const { return size_ == 0; }
  int size() const { return size_; }

  /// Highest-priority, earliest-seq entry. Requires !empty().
  const Entry& best() const;
  /// Lowest-priority, latest-seq entry (the shed candidate). Requires
  /// !empty().
  const Entry& victim() const;

  QueueItem pop_best();
  QueueItem pop_victim();

  /// Removes the entry for `request` (e.g. its deadline passed while
  /// queued). O(depth) worst case — removal is the rare path. Returns
  /// false when not present.
  bool remove(int request);

 private:
  std::map<int, std::deque<Entry>> levels_;  ///< priority -> FIFO.
  int size_ = 0;
};

/// Fixed-depth priority queue with lowest-priority-first eviction.
///
/// pop() serves the highest priority, FIFO within a priority level. When
/// a push would exceed `max_depth`, the queue sheds exactly one item: the
/// latest-arrived entry of the lowest priority present — which is the
/// incoming item itself unless it outranks the current minimum. The
/// invariant the fleet contract rests on: a shed item's priority is <=
/// every priority still queued at that instant, and depth() never exceeds
/// max_depth. This single-queue form is the documented reference the
/// sharded QueueSet is property-tested against.
class BoundedQueue {
 public:
  explicit BoundedQueue(int max_depth) : max_depth_(max_depth) {}

  struct PushResult {
    bool accepted = false;  ///< The incoming item is now queued.
    bool shed = false;      ///< One item was shed to make room.
    QueueItem victim{};     ///< The shed item (may be the incoming one).
  };
  PushResult push(QueueItem item);

  /// Highest-priority, earliest-arrival item. Queue must be non-empty.
  QueueItem pop();

  /// Removes the entry for `request` (e.g. its deadline passed while
  /// queued). Returns false when not present.
  bool remove(int request);

  bool empty() const { return fifo_.empty(); }
  int depth() const { return fifo_.size(); }
  int max_depth() const { return max_depth_; }

 private:
  int max_depth_;
  std::uint64_t next_seq_ = 0;
  PriorityFifo fifo_;
};

}  // namespace numaio::fleet
