// Admission control primitives for the fleet serving core: per-tenant
// token buckets and a bounded priority queue that sheds lowest-priority
// work instead of growing without bound.
//
// The paper's Eq. 1 predicts what an accepted multi-user load will get;
// admission control decides what gets accepted in the first place. Both
// primitives are pure simulated-time state machines (no wall clock, no
// allocation on the hot path beyond the queue vector), so fleet runs stay
// deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "simcore/units.h"

namespace numaio::fleet {

/// Classic token bucket in simulated time: `rate_per_s` tokens accrue per
/// simulated second up to `burst`; try_take spends one. Starts full.
class TokenBucket {
 public:
  TokenBucket(double rate_per_s, double burst)
      : rate_per_s_(rate_per_s), burst_(burst), tokens_(burst) {}

  /// Refills for the elapsed time, then takes one token if available.
  bool try_take(sim::Ns now);

  /// Token level after refilling to `now` (does not spend).
  double tokens(sim::Ns now);

 private:
  void refill(sim::Ns now);

  double rate_per_s_;
  double burst_;
  double tokens_;
  sim::Ns last_ = 0.0;
};

/// One queued admission ticket. `request` is an opaque caller-side id.
struct QueueItem {
  int request = -1;
  int priority = 0;  ///< Higher survives longer; shedding starts lowest.
};

/// Fixed-depth priority queue with lowest-priority-first eviction.
///
/// pop() serves the highest priority, FIFO within a priority level. When
/// a push would exceed `max_depth`, the queue sheds exactly one item: the
/// latest-arrived entry of the lowest priority present — which is the
/// incoming item itself unless it outranks the current minimum. The
/// invariant the fleet contract rests on: a shed item's priority is <=
/// every priority still queued at that instant, and depth() never exceeds
/// max_depth.
class BoundedQueue {
 public:
  explicit BoundedQueue(int max_depth) : max_depth_(max_depth) {}

  struct PushResult {
    bool accepted = false;  ///< The incoming item is now queued.
    bool shed = false;      ///< One item was shed to make room.
    QueueItem victim{};     ///< The shed item (may be the incoming one).
  };
  PushResult push(QueueItem item);

  /// Highest-priority, earliest-arrival item. Queue must be non-empty.
  QueueItem pop();

  /// Removes the entry for `request` (e.g. its deadline passed while
  /// queued). Returns false when not present.
  bool remove(int request);

  bool empty() const { return entries_.empty(); }
  int depth() const { return static_cast<int>(entries_.size()); }
  int max_depth() const { return max_depth_; }

 private:
  struct Entry {
    QueueItem item;
    std::uint64_t seq = 0;
  };

  int max_depth_;
  std::uint64_t next_seq_ = 0;
  std::vector<Entry> entries_;  ///< Unordered; scans are O(depth).
};

}  // namespace numaio::fleet
