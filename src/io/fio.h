// fio-style I/O benchmark runner (§III-B2).
//
// A FioJob mirrors the knobs of the paper's fio configuration: an engine
// (TCP / RDMA / libaio-SSD personality), a NUMA binding for the worker
// processes, a stream count, bytes per stream (400 GB in the paper, for
// stable averages), block size (128 KB) and I/O depth (16). Buffers are
// allocated in the workers' local memory, exactly as the paper configures
// ("all test cases will allocate buffers in their local memory space"),
// so the *binding node* determines the fabric path to the device.
//
// Streams of a job round-robin across the job's devices (the paper drives
// two SSD cards simultaneously). run_concurrent() executes several jobs at
// once for multi-user scenarios (the Eq. 1 validation).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "faults/injector.h"
#include "io/device.h"
#include "nm/host.h"
#include "obs/obs.h"
#include "simcore/retry.h"

namespace numaio::io {

/// How the job submits I/O. The paper observed (§IV-B3) that "regular
/// kernel-buffered read/write operations perform much worse than
/// kernel-bypassed ones, and asynchronous I/O operations outperform
/// synchronous ones" — so its SSD runs use libaio with kernel bypass,
/// which is kAsyncDirect here.
enum class IoMode {
  kAsyncDirect,    ///< libaio + O_DIRECT (the paper's configuration).
  kAsyncBuffered,  ///< async through the page cache (extra kernel copy).
  kSyncDirect,     ///< synchronous O_DIRECT: one request in flight.
  kSyncBuffered,   ///< synchronous buffered: both penalties.
};

struct FioJob {
  std::vector<const PcieDevice*> devices;
  std::string engine;
  NodeId cpu_node = 0;
  /// Placement policy for the worker buffers. The paper's default is the
  /// kernel's local-preferred policy ("all test cases will allocate
  /// buffers in their local memory space"); interleaving spreads each
  /// buffer's pages — and hence the DMA traffic — across nodes, averaging
  /// the per-class bandwidths (a mitigation knob §V-B's scheduler can
  /// exploit when rebinding processes is not possible).
  nm::Policy mem_policy{};
  int num_streams = 1;
  sim::Bytes bytes_per_stream = 400 * sim::kGiB;
  sim::Bytes block_size = 128 * sim::kKiB;
  int iodepth = 16;
  IoMode io_mode = IoMode::kAsyncDirect;
  /// For network engines: NUMA binding of the process on the *peer* host
  /// (an identical machine). -1 means the peer side is optimally placed.
  /// A bad peer binding caps the transfer just like a bad local one —
  /// up to the ~30% TCP loss reported for remote-core placement at either
  /// end ([3], cited in §I).
  int peer_node = -1;
  std::uint64_t seed = 20130407;
  /// Degraded-mode policy: per-stream attempt timeout, bounded retries
  /// with exponential backoff + jitter. The default timeout of 0 disables
  /// timeouts, which (absent faults) reproduces the fault-free behaviour
  /// exactly. An aborted attempt retries only the *remaining* bytes, so
  /// partial progress is never thrown away.
  sim::RetryPolicy retry{};
};

struct FioStreamStats {
  NodeId mem_node = 0;             ///< Where the stream's buffer landed.
  const PcieDevice* device = nullptr;
  sim::Gbps avg_rate = 0.0;        ///< Bytes / lifetime of the stream.
  /// Time-weighted coefficient of variation of the stream's rate. The
  /// paper reports single long-transfer averages because "the bandwidth
  /// performance is stable over the whole data transfer process" (§V-B);
  /// this field lets callers check that stability claim.
  double rate_cv = 0.0;
  /// Bytes actually moved (== the job's bytes_per_stream unless the stream
  /// exhausted its retries and gave up part-way).
  sim::Bytes bytes_moved = 0;
  /// Degraded-mode accounting: success/retries/abort and a confidence
  /// score discounted for retries, rate instability and fault overlap.
  sim::MeasurementOutcome outcome{};
};

struct FioResult {
  /// Average aggregate bandwidth: total bytes over the job's makespan —
  /// the quantity the paper reports.
  sim::Gbps aggregate = 0.0;
  sim::Ns duration = 0.0;
  std::vector<FioStreamStats> streams;
  /// Degraded-mode rollup over the job's streams.
  int total_retries = 0;
  int aborted_streams = 0;
  /// True when any stream aborted, retried, or reported low confidence —
  /// the caller should treat `aggregate` as a degraded-mode partial result.
  bool degraded = false;
};

/// Total bytes over the overall makespan of several concurrently-run jobs
/// (all jobs of run_concurrent start together). This is the "overall
/// bandwidth" of the paper's Eq. 1 validation.
sim::Gbps combined_aggregate(const std::vector<FioResult>& results);

/// Low-level stream construction, shared by FioRunner and the online
/// scheduler (model/online.h): the solver footprint and rate limits of one
/// stream of `engine` issued from cpu_node against a buffer on mem_node.
struct StreamOptions {
  int iodepth = 16;
  double rho_factor = 1.0;        ///< Extra engine-efficiency multiplier.
  double stream_cap_factor = 1.0; ///< Extra per-stream cap multiplier.
  double extra_cpu_app_per_gbps = 0.0;
  bool synchronous = false;       ///< Queue devices: one request in flight.
};

struct StreamShape {
  std::vector<sim::Usage> usages;  ///< Includes the engine occupancy term.
  sim::Gbps rate_cap = sim::kUnlimited;
  double tau = 0.0;                ///< Engine seconds-per-bit weight used.
};

/// Config-aggregate description of one stream (DESIGN.md §11 "Config
/// aggregates", same shape as mem::StreamConfig / faults::RandomPlanConfig
/// / sim::SolveOptions); the preferred shape_stream entry point. When
/// `placements` is empty the buffer lives whole on
/// `mem_node`; otherwise it spans the listed (node, bytes) shares
/// (interleaved policy) and DMA traffic splits across the per-node paths
/// in proportion to the page shares, with the engine occupancy / window
/// limits composing harmonically over them.
struct StreamSpec {
  const PcieDevice* device = nullptr;
  std::string engine;
  NodeId cpu_node = 0;
  NodeId mem_node = 0;
  std::vector<std::pair<NodeId, sim::Bytes>> placements;
  StreamOptions options{};
};

StreamShape shape_stream(fabric::Machine& machine, const StreamSpec& spec);

/// Deprecated: positional form kept for existing callers; prefer the
/// StreamSpec overload above.
StreamShape shape_stream(fabric::Machine& machine, const PcieDevice& device,
                         const std::string& engine, NodeId cpu_node,
                         NodeId mem_node, const StreamOptions& options = {});

/// Deprecated: positional placement-aware form kept for existing callers;
/// prefer the StreamSpec overload above.
StreamShape shape_stream(
    fabric::Machine& machine, const PcieDevice& device,
    const std::string& engine, NodeId cpu_node,
    std::span<const std::pair<NodeId, sim::Bytes>> placements,
    const StreamOptions& options = {});

/// A job with an absolute start time, for open-loop arrival workloads.
struct TimedJob {
  FioJob job;
  sim::Ns start = 0.0;
};

class FioRunner {
 public:
  explicit FioRunner(nm::Host& host) : host_(host) {}

  /// Attaches a fault injector: its remaining transitions are armed on the
  /// runner's fluid timeline, device stalls abort the in-flight transfers
  /// of streams on the stalled device (which then follow the job's retry
  /// policy), and stream confidences are discounted for fault overlap.
  /// Devices the jobs use are matched to the injector's registered devices
  /// by name. Pass nullptr to detach. The injector must outlive the runs.
  void set_fault_injector(faults::FaultInjector* injector) {
    faults_ = injector;
  }

  /// Attaches an observability context (nullptr detaches). Runs then open
  /// a `fio.job` span per job and a `fio.stream` span per stream, emit
  /// `fio.attempt` / `fio.retry` / `fio.abort` instant events (aborts and
  /// fault-triggered retries cite the causing `fault.transition` event),
  /// and maintain the fio.* counters. The context must outlive the runs.
  void set_observer(obs::Context* obs);

  /// Runs one job alone on the host.
  FioResult run(const FioJob& job);

  /// Runs several jobs concurrently (multi-user scenario); results are
  /// indexed like `jobs`.
  std::vector<FioResult> run_concurrent(const std::vector<FioJob>& jobs);

  /// Runs jobs that start at the given absolute times (an open-loop
  /// arrival process); results are indexed like `jobs`.
  std::vector<FioResult> run_timed(const std::vector<TimedJob>& jobs);

  /// One resource's steady-state load under a diagnosed job.
  struct ResourceLoad {
    std::string name;
    double utilization = 0.0;  ///< Weighted load / capacity.
    sim::Gbps capacity = 0.0;
  };

  /// Sets the job's steady-state flows up, solves once, and reports every
  /// finite-capacity resource the job touches, most utilized first — the
  /// answer to "what is actually limiting this transfer?" (§I-A: "the
  /// performance bottleneck can reside in any of these"). No data moves;
  /// the host is left unchanged.
  std::vector<ResourceLoad> diagnose(const FioJob& job);

 private:
  nm::Host& host_;
  faults::FaultInjector* faults_ = nullptr;

  obs::Context* obs_ = nullptr;
  obs::MetricsRegistry::Id m_streams_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_attempts_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_retries_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_aborted_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_degraded_jobs_ = obs::MetricsRegistry::kNone;
};

}  // namespace numaio::io
