#include "io/fio.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <stdexcept>

#include "io/nic.h"
#include "io/ssd.h"
#include "simcore/fluid_sim.h"
#include "simcore/rng.h"

namespace numaio::io {

namespace {

/// Aggregate capability of the peer-host process bound to `peer_node`.
/// The peer is an identical machine, so its fabric character is read from
/// the same profile; the peer's DMA direction is the complement of ours.
sim::Gbps peer_aggregate_cap(const fabric::Machine& machine,
                             const PcieDevice& device,
                             const std::string& engine, NodeId peer_node) {
  const char* peer_name = complementary_engine(engine);
  if (peer_name == nullptr || !device.has_engine(peer_name)) {
    return sim::kUnlimited;
  }
  const EngineSpec& peer = device.engine(peer_name);
  const NodeId attach = device.attach_node();
  const sim::Ns lat = peer.to_device
                          ? machine.path(peer_node, attach).dma_lat
                          : machine.path(attach, peer_node).dma_lat;
  const double window_rate = peer.window_bits / lat;
  double cap = peer.residual_for(peer_node) *
               std::min(peer.device_cap, window_rate);
  // Peer CPU: app work on peer_node plus interrupt work on the peer's
  // device node; they share one budget when the bindings coincide.
  double cpu_weight = peer.cpu_app_per_gbps;
  if (peer_node == attach) cpu_weight += peer.cpu_irq_per_gbps;
  if (cpu_weight > 0.0) {
    cap = std::min(cap, machine.cpu_capacity(peer_node) / cpu_weight);
  }
  return cap;
}

struct StreamSetup {
  std::size_t job_index = 0;
  const PcieDevice* device = nullptr;
  nm::Buffer buffer;
  StreamShape shape;
  sim::FluidSimulation::TransferId transfer = 0;
  // Degraded-mode attempt state. `transfer` always names the most recent
  // attempt; earlier attempts' bytes are folded into bytes_done when they
  // abort.
  int attempts = 0;              ///< Launches so far (retries = attempts-1).
  sim::Bytes bytes_done = 0;     ///< Bytes banked by aborted attempts.
  bool finished = false;         ///< Completed exactly at an abort boundary.
  bool gave_up = false;          ///< Retry budget exhausted.
  sim::Ns final_end = 0.0;       ///< End time when finished/gave_up is set.
  int fault_device = -1;         ///< Injector device index, -1 = untracked.
  sim::Rng backoff_rng{0};
  obs::SpanId span = 0;          ///< `fio.stream` trace span, 0 = untraced.
};

}  // namespace

StreamShape shape_stream(fabric::Machine& machine, const StreamSpec& spec) {
  assert(spec.device != nullptr);
  if (spec.placements.empty()) {
    return shape_stream(machine, *spec.device, spec.engine, spec.cpu_node,
                        spec.mem_node, spec.options);
  }
  return shape_stream(
      machine, *spec.device, spec.engine, spec.cpu_node,
      std::span<const std::pair<NodeId, sim::Bytes>>(spec.placements),
      spec.options);
}

StreamShape shape_stream(fabric::Machine& machine, const PcieDevice& device,
                         const std::string& engine, NodeId cpu_node,
                         NodeId mem_node, const StreamOptions& options) {
  const std::pair<NodeId, sim::Bytes> whole{mem_node, 1};
  return shape_stream(machine, device, engine, cpu_node,
                      std::span<const std::pair<NodeId, sim::Bytes>>(&whole, 1),
                      options);
}

StreamShape shape_stream(
    fabric::Machine& machine, const PcieDevice& device,
    const std::string& engine, NodeId cpu_node,
    std::span<const std::pair<NodeId, sim::Bytes>> placements,
    const StreamOptions& options) {
  assert(!placements.empty());
  const EngineSpec& spec = device.engine(engine);
  const NodeId attach = device.attach_node();
  const double rho = spec.residual_for(cpu_node) * options.rho_factor;
  assert(rho > 0.0);

  sim::Bytes total = 0;
  for (const auto& [node, bytes] : placements) total += bytes;
  assert(total > 0);

  // Traffic splits across the placement's nodes in proportion to page
  // share; the engine occupancy per bit and the per-stream window limit
  // compose harmonically over the per-node paths (time-per-bit adds).
  StreamShape shape;
  shape.tau = 0.0;
  double inv_window_cap = 0.0;  // 1 / per-stream-window rate
  for (const auto& [node, bytes] : placements) {
    const double share =
        static_cast<double>(bytes) / static_cast<double>(total);
    const sim::Ns lat = spec.to_device ? machine.path(node, attach).dma_lat
                                       : machine.path(attach, node).dma_lat;
    const double window_rate = spec.window_bits / lat;
    shape.tau += share / (rho * std::min(spec.device_cap, window_rate));
    if (spec.stream_window_bits > 0.0) {
      inv_window_cap +=
          share * (lat + spec.stream_extra_rtt_ns) / spec.stream_window_bits;
    }
    auto leg = machine.dma_usages(node, attach, spec.to_device);
    for (sim::Usage& u : leg) u.weight *= share;
    shape.usages.insert(shape.usages.end(), leg.begin(), leg.end());
  }

  // Per-stream limits.
  sim::Gbps cap = sim::kUnlimited;
  if (inv_window_cap > 0.0) cap = std::min(cap, 1.0 / inv_window_cap);
  if (spec.per_stream_cap > 0.0) cap = std::min(cap, spec.per_stream_cap);
  if (spec.per_iodepth_gbps > 0.0) {
    const int depth = options.synchronous ? 1 : options.iodepth;
    cap = std::min(cap, spec.per_iodepth_gbps * depth);
  }
  if (std::isfinite(cap)) cap *= options.stream_cap_factor;
  shape.rate_cap = cap;

  shape.usages.push_back({device.pcie_resource(spec.to_device), 1.0});
  shape.usages.push_back({device.engine_resource(engine), shape.tau});
  const double cpu_app =
      spec.cpu_app_per_gbps + options.extra_cpu_app_per_gbps;
  if (cpu_app > 0.0) {
    shape.usages.push_back({machine.cpu(cpu_node), cpu_app});
  }
  if (spec.cpu_irq_per_gbps > 0.0) {
    shape.usages.push_back(
        {machine.cpu(device.irq_node()), spec.cpu_irq_per_gbps});
  }
  return shape;
}

sim::Gbps combined_aggregate(const std::vector<FioResult>& results) {
  double total_bits = 0.0;
  sim::Ns makespan = 0.0;
  for (const FioResult& r : results) {
    total_bits += r.aggregate * r.duration;  // Gbps * ns = bits
    makespan = std::max(makespan, r.duration);
  }
  return makespan > 0.0 ? total_bits / makespan : 0.0;
}

void FioRunner::set_observer(obs::Context* obs) {
  obs_ = obs;
  if (obs_ == nullptr) return;
  m_streams_ = obs_->metrics.counter("fio.streams");
  m_attempts_ = obs_->metrics.counter("fio.attempts");
  m_retries_ = obs_->metrics.counter("fio.retries");
  m_aborted_ = obs_->metrics.counter("fio.aborted_streams");
  m_degraded_jobs_ = obs_->metrics.counter("fio.degraded_jobs");
}

FioResult FioRunner::run(const FioJob& job) {
  return run_concurrent({job}).front();
}

std::vector<FioResult> FioRunner::run_concurrent(
    const std::vector<FioJob>& jobs) {
  std::vector<TimedJob> timed;
  timed.reserve(jobs.size());
  for (const FioJob& job : jobs) timed.push_back(TimedJob{job, 0.0});
  return run_timed(timed);
}

std::vector<FioResult> FioRunner::run_timed(
    const std::vector<TimedJob>& jobs) {
  fabric::Machine& machine = host_.machine();
  auto& solver = machine.solver();
  obs::TraceRecorder* trace =
      obs_ != nullptr && obs_->trace.enabled() ? &obs_->trace : nullptr;

  std::vector<obs::SpanId> job_spans(jobs.size(), 0);
  std::vector<StreamSetup> setups;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const FioJob& job = jobs[j].job;
    if (job.devices.empty()) {
      throw std::invalid_argument("FioJob needs at least one device");
    }
    if (job.num_streams < 1) {
      throw std::invalid_argument("FioJob needs at least one stream");
    }
    if ((job.engine == kSsdWrite || job.engine == kSsdRead) &&
        job.num_streams < static_cast<int>(job.devices.size())) {
      // The paper's SSD tests use at least one process per card (§IV-B3).
      throw std::invalid_argument(
          "SSD jobs need at least one stream per card");
    }
    const char job_dir =
        job.devices.front()->has_engine(job.engine)
            ? (job.devices.front()->engine(job.engine).to_device ? 'w' : 'r')
            : '-';
    if (trace != nullptr) {
      obs::EventFields fields;
      fields.node_a = job.cpu_node;
      fields.node_b = job.devices.front()->attach_node();
      fields.dir = job_dir;
      fields.bytes = static_cast<long long>(job.bytes_per_stream) *
                     job.num_streams;
      fields.t_sim = jobs[j].start;
      fields.detail = job.engine;
      job_spans[j] = trace->begin_span("fio.job", 0, fields);
    }
    sim::Rng job_rng =
        sim::Rng(job.seed).fork(static_cast<std::uint64_t>(job.cpu_node));

    // Peer-host constraint for network engines: the whole job cannot move
    // data faster than the identically-built peer can source/sink it.
    sim::ResourceId peer_res = 0;
    bool has_peer_res = false;
    if (job.peer_node >= 0) {
      const sim::Gbps peer_cap = peer_aggregate_cap(
          machine, *job.devices.front(), job.engine, job.peer_node);
      if (std::isfinite(peer_cap)) {
        peer_res =
            solver.add_resource("peer:" + std::to_string(j), peer_cap);
        has_peer_res = true;
      }
    }

    for (int s = 0; s < job.num_streams; ++s) {
      StreamSetup setup;
      setup.job_index = j;
      setup.device =
          job.devices[static_cast<std::size_t>(s) % job.devices.size()];
      const EngineSpec& spec = setup.device->engine(job.engine);

      // Worker buffers follow the job's memory policy (default: local to
      // the binding node, the kernel's local-preferred behaviour).
      setup.buffer = host_.alloc_with_policy(
          job.block_size * static_cast<sim::Bytes>(job.iodepth),
          job.mem_policy, job.cpu_node);

      StreamOptions options;
      options.iodepth = job.iodepth;

      // I/O submission mode (meaningful for queue-depth devices, i.e. the
      // SSD engines): buffered mode adds a kernel copy in front of the
      // DMA, sync mode collapses the queue to one request in flight
      // (§IV-B3: buffered and synchronous modes "perform much worse").
      const bool queue_depth_device = spec.per_iodepth_gbps > 0.0;
      const bool buffered = job.io_mode == IoMode::kAsyncBuffered ||
                            job.io_mode == IoMode::kSyncBuffered;
      const bool synchronous = job.io_mode == IoMode::kSyncDirect ||
                               job.io_mode == IoMode::kSyncBuffered;
      if (queue_depth_device && buffered) {
        options.rho_factor *= 0.55;            // page-cache copy in the path
        options.stream_cap_factor *= 0.7;      // copy latency per request
        options.extra_cpu_app_per_gbps = 0.5;  // the copy burns CPU
      }
      options.synchronous = queue_depth_device && synchronous;

      if (spec.jitter_stddev > 0.0 &&
          job.num_streams > spec.jitter_threshold) {
        // Contention above ~4 streams wobbles both the engine-level
        // aggregate and the per-stream rates, which is why at 8/16 TCP
        // streams the per-binding ordering shuffles (§IV-B1, "sometimes
        // the performance of node 5 appears to be the best").
        options.rho_factor *= std::clamp(
            1.0 + job_rng.normal(-0.005, 0.4 * spec.jitter_stddev), 0.90,
            1.10);
        options.stream_cap_factor *= std::clamp(
            1.0 + job_rng.normal(-0.01, spec.jitter_stddev), 0.70, 1.30);
      }

      setup.shape =
          shape_stream(machine, *setup.device, job.engine, job.cpu_node,
                       setup.buffer.placement, options);
      if (has_peer_res) setup.shape.usages.push_back({peer_res, 1.0});
      setup.backoff_rng =
          sim::Rng(job.seed)
              .fork(0x72657472u)
              .fork(static_cast<std::uint64_t>(setups.size()));
      if (faults_ != nullptr) {
        setup.fault_device = faults_->device_index(setup.device->name());
      }
      if (obs_ != nullptr) obs_->metrics.add(m_streams_);
      if (trace != nullptr) {
        obs::EventFields fields;
        fields.node_a = job.cpu_node;
        fields.node_b = setup.buffer.home();
        fields.dir = job_dir;
        fields.bytes = static_cast<long long>(job.bytes_per_stream);
        fields.t_sim = jobs[j].start;
        fields.detail = setup.device->name();
        setup.span = trace->begin_span("fio.stream", job_spans[j], fields);
      }
      setups.push_back(std::move(setup));
    }
  }

  // Heterogeneous service times on one engine cost a little extra
  // occupancy (queue-switching between unequal DMA windows); this is the
  // ~3% by which real mixed-node aggregates undershoot Eq. 1's arithmetic
  // prediction.
  std::map<sim::ResourceId, std::pair<double, double>> tau_range;
  for (const StreamSetup& s : setups) {
    const sim::ResourceId engine_res =
        s.device->engine_resource(jobs[s.job_index].job.engine);
    auto [it, inserted] =
        tau_range.try_emplace(engine_res, s.shape.tau, s.shape.tau);
    if (!inserted) {
      it->second.first = std::min(it->second.first, s.shape.tau);
      it->second.second = std::max(it->second.second, s.shape.tau);
    }
  }
  std::vector<sim::ResourceId> penalized;
  for (const auto& [res, range] : tau_range) {
    if (range.second > range.first * 1.0001) {
      solver.set_capacity(res, 0.97);
      penalized.push_back(res);
    }
  }

  sim::FluidSimulation fluid(solver);
  fluid.enable_rate_trace();

  // Per-stream attempt machinery. launch_stream starts (or restarts) a
  // stream's remaining bytes and, when the job has a timeout, schedules a
  // deadline control that aborts the attempt and hands it to
  // handle_failure; handle_failure banks the partial bytes and either
  // relaunches after an exponentially backed-off, jittered delay or gives
  // up once the retry budget is spent. Both live as std::functions so they
  // can recurse into each other from inside control events.
  std::function<void(StreamSetup&, sim::Ns)> launch_stream;
  std::function<void(StreamSetup&, sim::Ns, obs::EventId)> handle_failure;

  launch_stream = [&](StreamSetup& s, sim::Ns at) {
    const FioJob& job = jobs[s.job_index].job;
    const sim::Bytes remaining = job.bytes_per_stream > s.bytes_done
                                     ? job.bytes_per_stream - s.bytes_done
                                     : 0;
    if (remaining == 0) {
      s.finished = true;
      s.final_end = at;
      return;
    }
    s.transfer =
        fluid.start_transfer_at(at, s.shape.usages, remaining, s.shape.rate_cap);
    ++s.attempts;
    if (obs_ != nullptr) obs_->metrics.add(m_attempts_);
    if (trace != nullptr) {
      obs::EventFields fields;
      fields.bytes = static_cast<long long>(remaining);
      fields.t_sim = at;
      const std::string detail = "attempt " + std::to_string(s.attempts);
      fields.detail = detail;
      trace->event("fio.attempt", s.span, 0, {}, fields);
    }
    if (job.retry.timeout > 0.0) {
      const auto tid = s.transfer;
      const sim::Ns deadline = at + job.retry.timeout;
      fluid.schedule_control(deadline, [&, tid, deadline] {
        if (s.transfer != tid || s.finished || s.gave_up) return;
        if (fluid.stats(tid).done) return;  // beat its deadline
        fluid.abort_transfer(tid);
        // A deadline miss under an active capacity fault is attributed to
        // the most recent fault transition; a miss on a healthy machine
        // (plain congestion) carries no cause.
        const obs::EventId cause =
            faults_ != nullptr && faults_->any_capacity_fault_active(deadline)
                ? faults_->last_transition_event()
                : 0;
        handle_failure(s, deadline, cause);
      });
    }
  };

  handle_failure = [&](StreamSetup& s, sim::Ns now, obs::EventId cause) {
    const FioJob& job = jobs[s.job_index].job;
    s.bytes_done += fluid.stats(s.transfer).bytes_moved;
    if (s.bytes_done >= job.bytes_per_stream) {
      s.finished = true;
      s.final_end = now;
      return;
    }
    if (s.attempts > job.retry.max_retries) {
      s.gave_up = true;
      s.final_end = now;
      if (obs_ != nullptr) obs_->metrics.add(m_aborted_);
      if (trace != nullptr) {
        obs::EventFields fields;
        fields.bytes = static_cast<long long>(s.bytes_done);
        fields.t_sim = now;
        fields.detail = "retry budget exhausted";
        trace->event("fio.abort", s.span, cause, "abort", fields);
      }
      return;
    }
    const sim::Ns delay =
        sim::backoff_delay(job.retry, s.attempts, s.backoff_rng);
    if (obs_ != nullptr) obs_->metrics.add(m_retries_);
    if (trace != nullptr) {
      obs::EventFields fields;
      fields.bytes = static_cast<long long>(s.bytes_done);
      fields.t_sim = now;
      const std::string detail =
          "backoff " + std::to_string(static_cast<long long>(delay)) + " ns";
      fields.detail = detail;
      trace->event("fio.retry", s.span, cause, "retry", fields);
    }
    launch_stream(s, now + delay);
  };

  if (faults_ != nullptr) {
    faults_->arm(fluid);
    // A stall window opening aborts every in-flight transfer on the
    // stalled device (a reset drops outstanding DMA); each aborted stream
    // then follows its job's retry policy. Attempts that are merely
    // pending (waiting out a backoff) are left alone — they will start
    // into the stall and crawl until their own deadline or the stall end.
    faults_->set_stall_handler([&](int device, sim::Ns at) {
      // The injector emits its fault.transition trace event before
      // invoking this handler, so the id below names the stall that is
      // killing these transfers.
      const obs::EventId cause = faults_->last_transition_event();
      for (StreamSetup& s : setups) {
        if (s.fault_device != device || s.attempts == 0) continue;
        if (s.finished || s.gave_up) continue;
        const auto& st = fluid.stats(s.transfer);
        if (st.done || st.start > at) continue;
        fluid.abort_transfer(s.transfer);
        handle_failure(s, at, cause);
      }
    });
  }

  for (StreamSetup& s : setups) {
    launch_stream(s, jobs[s.job_index].start);
  }
  fluid.run();

  if (faults_ != nullptr) {
    faults_->set_stall_handler(nullptr);
    faults_->restore();  // leave the machine healthy for the next caller
  }

  // True when a capacity-affecting fault is active anywhere in [a, b]:
  // at either endpoint or at any fault transition between them.
  const auto fault_overlaps = [&](sim::Ns a, sim::Ns b) {
    if (faults_ == nullptr) return false;
    if (faults_->any_capacity_fault_active(a) ||
        faults_->any_capacity_fault_active(b)) {
      return true;
    }
    for (sim::Ns t = faults_->next_transition_after(a); t < b;
         t = faults_->next_transition_after(t)) {
      if (faults_->any_capacity_fault_active(t)) return true;
    }
    return false;
  };

  // Collect per-job aggregates.
  std::vector<FioResult> results(jobs.size());
  std::vector<sim::Ns> first_start(jobs.size(),
                                   std::numeric_limits<double>::infinity());
  std::vector<sim::Ns> last_end(jobs.size(), 0.0);
  std::vector<sim::Bytes> total_bytes(jobs.size(), 0);
  for (StreamSetup& s : setups) {
    const sim::Ns start = jobs[s.job_index].start;
    sim::Ns end = 0.0;
    if (s.gave_up || s.finished) {
      end = s.final_end;
    } else {
      const auto& st = fluid.stats(s.transfer);
      s.bytes_done += st.bytes_moved;
      end = st.end;
    }

    if (trace != nullptr) {
      obs::EventFields fields;
      fields.bytes = static_cast<long long>(s.bytes_done);
      fields.t_sim = end;
      trace->end_span(s.span, s.gave_up ? "aborted" : "ok", fields);
    }

    FioStreamStats stream;
    stream.mem_node = s.buffer.home();
    stream.device = s.device;
    stream.bytes_moved = s.bytes_done;
    const sim::Ns lifetime = end - start;
    stream.avg_rate =
        lifetime > 0.0 ? sim::gbps(s.bytes_done, lifetime) : 0.0;
    stream.rate_cv = fluid.rate_stability(s.transfer).cv;

    stream.outcome.retries = s.attempts > 0 ? s.attempts - 1 : 0;
    if (s.gave_up) {
      stream.outcome.ok = false;
      stream.outcome.aborted = true;
      stream.outcome.confidence = 0.0;
    } else {
      // Discount confidence for retries, rate instability and fault
      // overlap; a clean, stable, fault-free stream stays at 1.0.
      double conf = 1.0 - 0.15 * stream.outcome.retries;
      conf -= std::min(0.3, stream.rate_cv);
      if (fault_overlaps(start, end)) conf -= 0.2;
      stream.outcome.confidence = std::clamp(conf, 0.05, 1.0);
    }

    first_start[s.job_index] = std::min(first_start[s.job_index], start);
    last_end[s.job_index] = std::max(last_end[s.job_index], end);
    total_bytes[s.job_index] += s.bytes_done;
    FioResult& result = results[s.job_index];
    result.total_retries += stream.outcome.retries;
    if (stream.outcome.aborted) ++result.aborted_streams;
    if (!stream.outcome.ok || stream.outcome.retries > 0 ||
        stream.outcome.confidence < 0.5) {
      result.degraded = true;
    }
    result.streams.push_back(std::move(stream));
    host_.free(s.buffer);
  }
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    results[j].duration = last_end[j] - first_start[j];
    results[j].aggregate =
        results[j].duration > 0.0
            ? sim::gbps(total_bytes[j], results[j].duration)
            : 0.0;
    if (obs_ != nullptr && results[j].degraded) {
      obs_->metrics.add(m_degraded_jobs_);
    }
    if (trace != nullptr) {
      obs::EventFields fields;
      fields.bytes = static_cast<long long>(total_bytes[j]);
      fields.t_sim = last_end[j];
      trace->end_span(job_spans[j], results[j].degraded ? "degraded" : "ok",
                      fields);
    }
  }

  for (sim::ResourceId res : penalized) solver.set_capacity(res, 1.0);
  return results;
}

std::vector<FioRunner::ResourceLoad> FioRunner::diagnose(const FioJob& job) {
  fabric::Machine& machine = host_.machine();
  auto& solver = machine.solver();

  // Reuse the full setup path with zero-byte... instead: build the job's
  // stream shapes exactly as run_timed would (no jitter: diagnosis is a
  // steady-state question) and add them as plain flows.
  if (job.devices.empty()) {
    throw std::invalid_argument("FioJob needs at least one device");
  }
  std::vector<sim::FlowId> flows;
  std::vector<std::vector<sim::Usage>> usages;
  std::vector<nm::Buffer> buffers;
  for (int s_idx = 0; s_idx < job.num_streams; ++s_idx) {
    const PcieDevice* device =
        job.devices[static_cast<std::size_t>(s_idx) % job.devices.size()];
    buffers.push_back(host_.alloc_with_policy(
        job.block_size * static_cast<sim::Bytes>(job.iodepth),
        job.mem_policy, job.cpu_node));
    StreamOptions options;
    options.iodepth = job.iodepth;
    const StreamShape shape =
        shape_stream(machine, *device, job.engine, job.cpu_node,
                     buffers.back().placement, options);
    flows.push_back(solver.add_flow(shape.usages, shape.rate_cap));
    usages.push_back(shape.usages);
  }

  const auto& rates = solver.solve();
  // Accumulate this job's weighted load per resource it touches.
  std::map<sim::ResourceId, double> load;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    for (const sim::Usage& u : usages[f]) {
      load[u.resource] += rates[flows[f]] * u.weight;
    }
  }
  std::vector<ResourceLoad> report;
  for (const auto& [res, used] : load) {
    const double cap = solver.capacity(res);
    if (!std::isfinite(cap) || cap <= 0.0) continue;
    report.push_back(
        ResourceLoad{solver.resource_name(res), used / cap, cap});
  }
  std::sort(report.begin(), report.end(),
            [](const ResourceLoad& a, const ResourceLoad& b) {
              if (a.utilization != b.utilization) {
                return a.utilization > b.utilization;
              }
              return a.name < b.name;
            });

  for (const sim::FlowId f : flows) solver.remove_flow(f);
  for (auto& b : buffers) host_.free(b);
  return report;
}

}  // namespace numaio::io
