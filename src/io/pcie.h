// PCI Express link model.
//
// The paper's devices sit on PCIe Gen 2 x8: 5 GT/s per lane with 8b/10b
// encoding, so 40 Gbps raw becomes 32 Gbps of data bandwidth per direction
// (§IV-B1) — which is why 25 Gbps of application throughput is "very close
// to the theoretical performance limit".
#pragma once

#include "simcore/units.h"

namespace numaio::io {

struct PcieLink {
  int gen = 2;
  int lanes = 8;

  /// Raw signalling rate per lane, Gbps.
  double raw_per_lane() const {
    switch (gen) {
      case 1:
        return 2.5;
      case 2:
        return 5.0;
      case 3:
        return 8.0;  // (128b/130b encoding; see data_gbps)
      default:
        return 5.0;
    }
  }

  /// Encoding efficiency: Gen 1/2 use 8b/10b, Gen 3+ 128b/130b.
  double encoding_efficiency() const { return gen <= 2 ? 0.8 : 128.0 / 130.0; }

  /// Usable data bandwidth per direction, Gbps.
  sim::Gbps data_gbps() const {
    return raw_per_lane() * lanes * encoding_efficiency();
  }
};

}  // namespace numaio::io
