#include "io/nic.h"

namespace numaio::io {

const char* complementary_engine(const std::string& engine) {
  if (engine == kTcpSend) return kTcpRecv;
  if (engine == kTcpRecv) return kTcpSend;
  if (engine == kRdmaWrite) return kRdmaRead;
  if (engine == kRdmaRead) return kRdmaWrite;
  return nullptr;
}

namespace {
std::vector<EngineSpec> connectx3_engines(NodeId node,
                                          NodeId residual_origin) {
  const NodeId shift = residual_origin - 7;
  std::vector<EngineSpec> engines;

  // TCP send: device-cap-bound on good paths (~20.9), engine-window-bound
  // on the weak {2,3}->7 paths (16200/1000 ns = 16.2 Gbps, the Table IV
  // class-3 value). One stream is window-limited to ~6.5 Gbps
  // (34450 bits over 5 us network RTT + host path latency), so aggregate
  // grows until ~4 parallel streams (Fig 5).
  {
    EngineSpec e;
    e.name = kTcpSend;
    e.to_device = true;
    e.device_cap = 20.9;
    e.window_bits = 16200.0;
    e.stream_window_bits = 34450.0;
    e.stream_extra_rtt_ns = 5000.0;  // 0.005 ms ping RTT (§III-A)
    e.cpu_app_per_gbps = 1.0;
    e.cpu_irq_per_gbps = 0.4;
    e.jitter_stddev = 0.05;
    e.jitter_threshold = 4;
    engines.push_back(std::move(e));
  }

  // TCP receive: slightly higher ceiling (receive path has no congestion
  // control stall), window 18750 bits. Residuals: the paper's own Table V
  // shows {2,3} and especially {4} falling below what the NUMA paths
  // explain — "the I/O bandwidth bottleneck is not related [to] the NUMA
  // penalties" (§V-A) — so those cells carry measured residuals.
  {
    EngineSpec e;
    e.name = kTcpRecv;
    e.to_device = false;
    e.device_cap = 21.8;
    e.window_bits = 18750.0;
    e.stream_window_bits = 34450.0;
    e.stream_extra_rtt_ns = 5000.0;
    e.cpu_app_per_gbps = 1.0;
    e.cpu_irq_per_gbps = 0.4;
    e.jitter_stddev = 0.05;
    e.jitter_threshold = 4;
    if (node == residual_origin) {
      // Measured residuals of the paper's testbed; they belong to the
      // node-7 device placement specifically (§V-A: some I/O differences
      // are "not related [to] the NUMA penalties").
      e.residual = {{2 + shift, 0.92}, {3 + shift, 0.92},
                    {4 + shift, 0.795}};
    }
    engines.push_back(std::move(e));
  }

  // RDMA write: fully offloaded (negligible CPU), 23.3 Gbps ceiling,
  // window 17100 bits -> 17.1 Gbps on the {2,3}->7 paths (Table IV).
  {
    EngineSpec e;
    e.name = kRdmaWrite;
    e.to_device = true;
    e.device_cap = 23.3;
    e.window_bits = 17100.0;
    e.per_stream_cap = 11.8;  // one QP's issue rate
    e.cpu_app_per_gbps = 0.05;
    e.cpu_irq_per_gbps = 0.08;
    engines.push_back(std::move(e));
  }

  // RDMA read: 22.0 Gbps ceiling, window 16650 bits. Over the calibrated
  // 7->{0,1,5} (910 ns) and 7->4 (1035 ns) paths this gives 18.3 and
  // 16.1 Gbps — the Table V classes that *invert* the STREAM ordering of
  // {0,1} vs {2,3}.
  {
    EngineSpec e;
    e.name = kRdmaRead;
    e.to_device = false;
    e.device_cap = 22.0;
    e.window_bits = 16650.0;
    e.per_stream_cap = 11.8;
    e.cpu_app_per_gbps = 0.05;
    e.cpu_irq_per_gbps = 0.08;
    engines.push_back(std::move(e));
  }

  return engines;
}
}  // namespace

std::unique_ptr<PcieDevice> make_connectx3(fabric::Machine& machine,
                                           NodeId node,
                                           NodeId residual_origin) {
  return std::make_unique<PcieDevice>(
      machine, "mlx4_0", node, PcieLink{},
      connectx3_engines(node, residual_origin));
}

std::unique_ptr<PcieDevice> make_connectx3_lite(fabric::Machine& machine,
                                                NodeId node) {
  // Borrow the ConnectX-3's engine shapes, then scale every rate-setting
  // knob to the older part's ceilings. CPU cost per Gbps stays — protocol
  // work does not get cheaper on a slower NIC — and the residuals go:
  // they are measurements of the paper's specific rig.
  constexpr double kScale = 0.55;
  std::vector<EngineSpec> engines = connectx3_engines(node, /*origin*/ 7);
  for (EngineSpec& e : engines) {
    e.device_cap *= kScale;
    e.window_bits *= kScale;
    e.stream_window_bits *= kScale;
    e.per_stream_cap *= kScale;
    e.residual.clear();
  }
  return std::make_unique<PcieDevice>(machine, "mlx4_lite", node, PcieLink{},
                                      std::move(engines));
}

}  // namespace numaio::io
