#include "io/hostpair.h"

#include <cassert>
#include <limits>
#include <stdexcept>

#include "fabric/calibration.h"
#include "simcore/fluid_sim.h"

namespace numaio::io {

namespace {
// 40 GbE line rate after Ethernet framing (MTU 9000 keeps overhead low).
constexpr sim::Gbps kWireGbps = 37.6;
}  // namespace

HostPair::HostPair()
    : machine_(std::make_unique<fabric::Machine>(
          fabric::pair_profile(fabric::dl585_profile()))) {
  host_ = std::make_unique<nm::Host>(*machine_);
  nic_a_ = make_connectx3(*machine_, 7);
  nic_b_ = make_connectx3(*machine_, peer(7), /*residual_origin=*/peer(7));
  auto& solver = machine_->solver();
  wire_ab_ = solver.add_resource("wire:a>b", kWireGbps);
  wire_ba_ = solver.add_resource("wire:b>a", kWireGbps);
  // Target-side DMA occupancy for one-sided operations: the passive NIC's
  // tag pools (separate RX/TX engines) serve the inbound streams,
  // normalized like engine occupancy.
  target_a_to_mem_ = solver.add_resource("mlx4_0:tgt>mem", 1.0);
  target_a_from_mem_ = solver.add_resource("mlx4_0:tgt<mem", 1.0);
  target_b_to_mem_ = solver.add_resource("mlx4_1:tgt>mem", 1.0);
  target_b_from_mem_ = solver.add_resource("mlx4_1:tgt<mem", 1.0);
}

HostPair HostPair::dl585() { return HostPair(); }

NodeId HostPair::peer(NodeId node) const {
  return node + machine_->num_nodes() / 2;
}

FioResult HostPair::run(const NetJob& job) {
  const NetJob jobs[] = {job};
  return run_concurrent(jobs).front();
}

std::vector<FioResult> HostPair::run_concurrent(
    std::span<const NetJob> jobs) {
  auto& solver = machine_->solver();
  sim::FluidSimulation fluid(solver);
  fluid.enable_rate_trace();

  struct StreamSetup {
    std::size_t job_index = 0;
    nm::Buffer buf_a;
    nm::Buffer buf_b;
    sim::FluidSimulation::TransferId transfer = 0;
  };
  std::vector<StreamSetup> setups;

  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const NetJob& job = jobs[j];
    const char* peer_name = complementary_engine(job.engine);
    if (peer_name == nullptr) {
      throw std::invalid_argument("HostPair: '" + job.engine +
                                  "' is not a network engine");
    }
    if (job.num_streams < 1) {
      throw std::invalid_argument("HostPair: at least one stream");
    }
    const NodeId b_node = peer(job.peer_node);
    const bool a_sends = nic_a_->engine(job.engine).to_device;
    // One-sided RDMA never schedules the peer's CPU or its initiator
    // engine; the far end only contributes the inbound DMA path (its
    // fabric legs, memory controller, PCIe, and the target-side DMA
    // window). Two-sided TCP chains the full complementary personality.
    const bool one_sided = job.engine.rfind("rdma", 0) == 0;

    for (int s = 0; s < job.num_streams; ++s) {
      StreamSetup setup;
      setup.job_index = j;
      setup.buf_a = host_->alloc_local(2 * sim::kMiB, job.local_node);
      setup.buf_b = host_->alloc_local(2 * sim::kMiB, b_node);

      const StreamShape shape_a =
          shape_stream(*machine_, *nic_a_, job.engine, job.local_node,
                       setup.buf_a.home());

      std::vector<sim::Usage> usages = shape_a.usages;
      usages.push_back({a_sends ? wire_ab_ : wire_ba_, 1.0});
      sim::Gbps cap = shape_a.rate_cap;
      if (one_sided) {
        // Target-side DMA: fabric legs + PCIe, plus the passive NIC's
        // shared tag pool (occupancy 1/(window/lat) per Gbps).
        const EngineSpec& spec = nic_a_->engine(job.engine);
        const NodeId b_attach = nic_b_->attach_node();
        const bool to_b_memory = a_sends;  // our write lands in B's memory
        auto b_legs = machine_->dma_usages(setup.buf_b.home(), b_attach,
                                           /*to_device=*/!to_b_memory);
        usages.insert(usages.end(), b_legs.begin(), b_legs.end());
        usages.push_back({nic_b_->pcie_resource(!to_b_memory), 1.0});
        const sim::Ns b_lat =
            to_b_memory
                ? machine_->path(b_attach, setup.buf_b.home()).dma_lat
                : machine_->path(setup.buf_b.home(), b_attach).dma_lat;
        usages.push_back({to_b_memory ? target_b_to_mem_
                                      : target_b_from_mem_,
                          b_lat / spec.window_bits});
      } else {
        const StreamShape shape_b =
            shape_stream(*machine_, *nic_b_, peer_name, b_node,
                         setup.buf_b.home());
        usages.insert(usages.end(), shape_b.usages.begin(),
                      shape_b.usages.end());
        cap = std::min(cap, shape_b.rate_cap);
      }

      setup.transfer =
          fluid.start_transfer(std::move(usages), job.bytes_per_stream, cap);
      setups.push_back(std::move(setup));
    }
  }

  fluid.run();

  std::vector<FioResult> results(jobs.size());
  std::vector<sim::Ns> first(jobs.size(),
                             std::numeric_limits<double>::infinity());
  std::vector<sim::Ns> last(jobs.size(), 0.0);
  std::vector<sim::Bytes> bytes(jobs.size(), 0);
  for (StreamSetup& s : setups) {
    const auto& st = fluid.stats(s.transfer);
    first[s.job_index] = std::min(first[s.job_index], st.start);
    last[s.job_index] = std::max(last[s.job_index], st.end);
    bytes[s.job_index] += st.bytes;
    results[s.job_index].streams.push_back(
        FioStreamStats{s.buf_a.home(), nic_a_.get(), st.avg_rate(),
                       fluid.rate_stability(s.transfer).cv});
    host_->free(s.buf_a);
    host_->free(s.buf_b);
  }
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    results[j].duration = last[j] - first[j];
    results[j].aggregate = results[j].duration > 0.0
                               ? sim::gbps(bytes[j], results[j].duration)
                               : 0.0;
  }
  return results;
}

}  // namespace numaio::io
