#include "io/ssd.h"

namespace numaio::io {

std::unique_ptr<PcieDevice> make_nytro_warpdrive(fabric::Machine& machine,
                                                 NodeId node, int index) {
  std::vector<EngineSpec> engines;

  // Write: 14.55 Gbps flash ceiling per card (29.1 combined); engine
  // window 9000 bits -> 9.0 Gbps per card over the 1000 ns {2,3}->7 paths
  // (18.0 combined, the Table IV class-3 value). Per-stream service is
  // queue-depth-bound: ~0.53 Gbps per unit of iodepth (8.5 Gbps at the
  // paper's iodepth 16), so two processes per card are needed to saturate.
  {
    EngineSpec e;
    e.name = kSsdWrite;
    e.to_device = true;
    e.device_cap = 14.55;
    e.window_bits = 9000.0;
    e.per_iodepth_gbps = 0.53;
    e.cpu_app_per_gbps = 0.12;  // libaio + kernel bypass: little CPU
    e.cpu_irq_per_gbps = 0.18;
    engines.push_back(std::move(e));
  }

  // Read: 17.35 Gbps per card (34.7 combined); window 13700 bits ->
  // 15.05 Gbps/card over 7->{0,1,5} (30.1 combined, Table V class 3).
  // Residuals on {2,3} and {4} carry the testbed effects the paper itself
  // flags as not NUMA-related (33.1 and 18.5 Gbps combined).
  {
    EngineSpec e;
    e.name = kSsdRead;
    e.to_device = false;
    e.device_cap = 17.35;
    e.window_bits = 13700.0;
    e.per_iodepth_gbps = 0.65;
    e.cpu_app_per_gbps = 0.12;
    e.cpu_irq_per_gbps = 0.18;
    if (node == 7) {
      // Node-7-placement residuals of the paper's testbed (see nic.cpp).
      e.residual = {{2, 0.954}, {3, 0.954}, {4, 0.70}};
    }
    engines.push_back(std::move(e));
  }

  return std::make_unique<PcieDevice>(machine,
                                      "nytro" + std::to_string(index), node,
                                      PcieLink{}, std::move(engines));
}

std::vector<std::unique_ptr<PcieDevice>> make_nytro_pair(
    fabric::Machine& machine, NodeId node) {
  std::vector<std::unique_ptr<PcieDevice>> pair;
  pair.push_back(make_nytro_warpdrive(machine, node, 0));
  pair.push_back(make_nytro_warpdrive(machine, node, 1));
  return pair;
}

}  // namespace numaio::io
