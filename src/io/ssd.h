// The LSI Nytro WarpDrive WLP4-200 PCIe SSD of the paper's testbed
// (Table II). The paper drives *two* cards simultaneously with libaio in
// kernel-bypass mode (iodepth 16, 128 KB blocks) and reports the combined
// bandwidth, so experiments use make_nytro_pair().
//
// Calibration targets (aggregate over both cards, Tables IV/V):
//   SSD write: 28.8 / 28.5 / 18.0 Gbps across classes {6,7}/{0,1,4,5}/{2,3}
//   SSD read:  34.7 / 33.1 / 30.1 / 18.5 across {6,7}/{2,3}/{0,1,5}/{4}
#pragma once

#include <memory>
#include <vector>

#include "io/device.h"

namespace numaio::io {

inline constexpr char kSsdWrite[] = "ssd_write";
inline constexpr char kSsdRead[] = "ssd_read";

/// One Nytro WarpDrive card attached to `node`. `index` distinguishes the
/// two cards' resource names.
std::unique_ptr<PcieDevice> make_nytro_warpdrive(fabric::Machine& machine,
                                                 NodeId node, int index);

/// The testbed's pair of cards, both on `node`.
std::vector<std::unique_ptr<PcieDevice>> make_nytro_pair(
    fabric::Machine& machine, NodeId node);

}  // namespace numaio::io
