#include "io/jobfile.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <sstream>
#include <stdexcept>

#include <fstream>

#include "io/nic.h"
#include "io/ssd.h"
#include "simcore/status.h"

namespace numaio::io {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw StatusError(StatusCode::kParse, "job file line " +
                                            std::to_string(line) + ": " +
                                            what);
}

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Raw option bag for one section; engine resolution happens at the end so
/// [global] defaults can be overridden per job in any order.
struct Section {
  std::string name;
  std::string ioengine;
  std::string rw;
  sim::Bytes block_size = 0;
  int iodepth = 0;
  sim::Bytes size = 0;
  int numjobs = 0;
  int cpu_node = -1;
  bool has_cpu_node = false;
  std::vector<std::string> seen;  ///< Canonical option names set so far.
};

/// Setting the same option twice in one section is almost always a
/// copy-paste mistake in a job file; fio silently keeps the last value,
/// which is exactly how a 400g run quietly becomes a 4g run. Reject it.
/// (A job section overriding [global] is the intended mechanism and is
/// unaffected — sections track their options separately.)
void mark_seen(Section& s, const std::string& canonical, int line) {
  if (std::find(s.seen.begin(), s.seen.end(), canonical) != s.seen.end()) {
    fail(line, "duplicate option '" + canonical + "' in section [" +
                   s.name + "]");
  }
  s.seen.push_back(canonical);
}

/// Strict integer parse: whole string, no stray characters, bounded.
/// std::stoi alone would accept "16abc" and throw context-free errors on
/// garbage; this always fails with the line number and the allowed range.
int parse_int(const std::string& value, int line, const std::string& key,
              int min, int max) {
  long v = 0;
  std::size_t pos = 0;
  try {
    v = std::stol(value, &pos);
  } catch (const std::exception&) {
    fail(line, "'" + key + "' wants an integer, got '" + value + "'");
  }
  if (pos != value.size()) {
    fail(line, "'" + key + "' wants an integer, got '" + value + "'");
  }
  if (v < min || v > max) {
    fail(line, "'" + key + "' out of range [" + std::to_string(min) + ", " +
                   std::to_string(max) + "], got " + value);
  }
  return static_cast<int>(v);
}

/// parse_size with the line number attached to any failure.
sim::Bytes parse_size_at(const std::string& value, int line,
                         const std::string& key, sim::Bytes min,
                         sim::Bytes max) {
  sim::Bytes v = 0;
  try {
    v = parse_size(value);
  } catch (const std::exception& e) {
    fail(line, e.what());
  }
  if (v < min || v > max) {
    fail(line, "'" + key + "' out of range [" + std::to_string(min) + ", " +
                   std::to_string(max) + " bytes], got '" + value + "'");
  }
  return v;
}

void apply_key(Section& s, const std::string& key, const std::string& value,
               int line) {
  if (key == "ioengine") {
    mark_seen(s, "ioengine", line);
    s.ioengine = lower(value);
  } else if (key == "rw") {
    mark_seen(s, "rw", line);
    s.rw = lower(value);
  } else if (key == "bs" || key == "blocksize") {
    mark_seen(s, "bs", line);
    s.block_size = parse_size_at(value, line, "bs", 512, sim::kGiB);
  } else if (key == "iodepth") {
    mark_seen(s, "iodepth", line);
    s.iodepth = parse_int(value, line, "iodepth", 1, 4096);
  } else if (key == "size") {
    mark_seen(s, "size", line);
    s.size = parse_size_at(value, line, "size", 1,
                           sim::Bytes{1} << 50);  // 1 PiB ceiling
  } else if (key == "numjobs") {
    mark_seen(s, "numjobs", line);
    s.numjobs = parse_int(value, line, "numjobs", 1, 1024);
  } else if (key == "cpunodebind" || key == "numa_cpu_nodes") {
    mark_seen(s, "cpunodebind", line);
    s.cpu_node = parse_int(value, line, "cpunodebind", 0, 1023);
    s.has_cpu_node = true;
  } else {
    fail(line, "unknown option '" + key + "'");
  }
}

void inherit(Section& job, const Section& global) {
  if (job.ioengine.empty()) job.ioengine = global.ioengine;
  if (job.rw.empty()) job.rw = global.rw;
  if (job.block_size == 0) job.block_size = global.block_size;
  if (job.iodepth == 0) job.iodepth = global.iodepth;
  if (job.size == 0) job.size = global.size;
  if (job.numjobs == 0) job.numjobs = global.numjobs;
  if (!job.has_cpu_node && global.has_cpu_node) {
    job.cpu_node = global.cpu_node;
    job.has_cpu_node = true;
  }
}

std::string engine_name(const Section& s) {
  const bool write = s.rw == "write";
  if (s.rw != "read" && s.rw != "write") {
    throw std::invalid_argument("job '" + s.name +
                                "': rw must be read or write, got '" +
                                s.rw + "'");
  }
  if (s.ioengine == "net" || s.ioengine == "tcp") {
    return write ? kTcpSend : kTcpRecv;
  }
  if (s.ioengine == "rdma") {
    return write ? kRdmaWrite : kRdmaRead;
  }
  if (s.ioengine == "libaio") {
    return write ? kSsdWrite : kSsdRead;
  }
  throw std::invalid_argument("job '" + s.name +
                              "': unknown ioengine '" + s.ioengine + "'");
}

}  // namespace

sim::Bytes parse_size(const std::string& text) {
  const std::string t = trim(lower(text));
  if (t.empty()) throw std::invalid_argument("empty size literal");
  sim::Bytes multiplier = 1;
  std::string digits = t;
  const char suffix = t.back();
  if (suffix == 'k') {
    multiplier = sim::kKiB;
    digits = t.substr(0, t.size() - 1);
  } else if (suffix == 'm') {
    multiplier = sim::kMiB;
    digits = t.substr(0, t.size() - 1);
  } else if (suffix == 'g') {
    multiplier = sim::kGiB;
    digits = t.substr(0, t.size() - 1);
  }
  if (digits.empty() ||
      !std::all_of(digits.begin(), digits.end(),
                   [](unsigned char c) { return std::isdigit(c); })) {
    throw std::invalid_argument("bad size literal '" + text + "'");
  }
  sim::Bytes value = 0;
  try {
    value = static_cast<sim::Bytes>(std::stoull(digits));
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("size literal '" + text +
                                "' overflows 64 bits");
  }
  if (multiplier > 1 &&
      value > std::numeric_limits<sim::Bytes>::max() / multiplier) {
    throw std::invalid_argument("size literal '" + text +
                                "' overflows 64 bits");
  }
  return value * multiplier;
}

JobFile parse_job_file(const std::string& text) {
  Section global;
  global.name = "global";
  std::vector<Section> sections;
  Section* current = nullptr;

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments, then whitespace.
    const auto comment = raw.find_first_of("#;");
    std::string line = trim(comment == std::string::npos
                                ? raw
                                : raw.substr(0, comment));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        fail(line_no, "malformed section header");
      }
      const std::string name = trim(line.substr(1, line.size() - 2));
      if (name.empty()) fail(line_no, "empty section name");
      if (lower(name) == "global") {
        current = &global;
      } else {
        for (const Section& prior : sections) {
          if (prior.name == name) {
            fail(line_no, "duplicate section [" + name + "]");
          }
        }
        sections.push_back(Section{});
        sections.back().name = name;
        current = &sections.back();
      }
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected key=value");
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string value = trim(line.substr(eq + 1));
    if (value.empty()) fail(line_no, "empty value for '" + key + "'");
    if (current == nullptr) {
      fail(line_no, "option before any section header");
    }
    try {
      apply_key(*current, key, value, line_no);
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      fail(line_no, "bad value '" + value + "' for '" + key + "'");
    }
  }

  if (sections.empty()) {
    throw std::invalid_argument("job file defines no jobs");
  }

  JobFile file;
  for (Section& s : sections) {
    inherit(s, global);
    if (s.ioengine.empty()) {
      throw std::invalid_argument("job '" + s.name + "': missing ioengine");
    }
    if (!s.has_cpu_node) {
      throw std::invalid_argument("job '" + s.name +
                                  "': missing cpunodebind");
    }
    JobFileEntry entry;
    entry.name = s.name;
    entry.job.engine = engine_name(s);
    entry.job.cpu_node = s.cpu_node;
    if (s.numjobs > 0) entry.job.num_streams = s.numjobs;
    if (s.block_size > 0) entry.job.block_size = s.block_size;
    if (s.iodepth > 0) entry.job.iodepth = s.iodepth;
    if (s.size > 0) entry.job.bytes_per_stream = s.size;
    file.jobs.push_back(std::move(entry));
  }
  return file;
}

JobFile load_job_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw StatusError(StatusCode::kNoFile, "cannot read '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_job_file(text.str());  // throws StatusError kParse
}

std::vector<FioJob> resolve_jobs(const JobFile& file, const DeviceSet& set) {
  std::vector<FioJob> jobs;
  for (const JobFileEntry& entry : file.jobs) {
    FioJob job = entry.job;
    const bool is_ssd = job.engine.rfind("ssd", 0) == 0;
    if (is_ssd) {
      if (set.ssds.empty()) {
        throw std::invalid_argument("job '" + entry.name +
                                    "' needs SSDs but the set has none");
      }
      job.devices = set.ssds;
    } else {
      if (set.nic == nullptr) {
        throw std::invalid_argument("job '" + entry.name +
                                    "' needs a NIC but the set has none");
      }
      job.devices = {set.nic};
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

}  // namespace numaio::io
