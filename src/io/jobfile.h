// fio-format job file parsing (§III-B2 runs everything through fio).
//
// A subset of fio's INI dialect large enough to express every experiment
// in the paper:
//
//   [global]                ; defaults inherited by all jobs
//   ioengine=rdma           ; net | rdma | libaio
//   rw=read                 ; read | write
//   bs=128k                 ; block size (k/m/g binary suffixes)
//   iodepth=16
//   size=400g               ; bytes per stream
//   numjobs=4               ; parallel streams
//
//   [reader-on-node2]
//   cpunodebind=2           ; NUMA binding of this job's processes
//
// Engine resolution: (ioengine, rw) maps to a device personality —
//   net/write -> tcp_send, net/read -> tcp_recv,
//   rdma/write -> rdma_write, rdma/read -> rdma_read,
//   libaio/write -> ssd_write, libaio/read -> ssd_read —
// and resolve_jobs() attaches the right devices from a DeviceSet.
// Comments (# or ;), blank lines and surrounding whitespace are accepted;
// unknown keys or malformed values throw std::invalid_argument with the
// offending line number.
#pragma once

#include <string>
#include <vector>

#include "io/fio.h"

namespace numaio::io {

/// One parsed job section: the job name plus a FioJob whose `devices` are
/// not yet resolved (engine name is set).
struct JobFileEntry {
  std::string name;
  FioJob job;
};

struct JobFile {
  std::vector<JobFileEntry> jobs;
};

/// Parses the INI text. Throws StatusError (StatusCode::kParse, which
/// is-a std::invalid_argument) with a line number on malformed input.
JobFile parse_job_file(const std::string& text);

/// Reads and parses a job file from disk. Throws StatusError:
/// StatusCode::kNoFile when the file cannot be read, StatusCode::kParse
/// when its contents are malformed.
JobFile load_job_file(const std::string& path);

/// Parses a fio-style size literal: plain bytes or binary k/m/g suffix
/// (case-insensitive). Throws std::invalid_argument on garbage.
sim::Bytes parse_size(const std::string& text);

/// The devices available to resolve_jobs().
struct DeviceSet {
  const PcieDevice* nic = nullptr;
  std::vector<const PcieDevice*> ssds;
};

/// Fills in each job's device list from the set; throws if a job needs a
/// device kind the set does not provide.
std::vector<FioJob> resolve_jobs(const JobFile& file, const DeviceSet& set);

}  // namespace numaio::io
