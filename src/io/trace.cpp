#include "io/trace.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "io/ssd.h"

namespace numaio::io {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::invalid_argument("trace line " + std::to_string(line) + ": " +
                              what);
}

}  // namespace

std::vector<TraceEntry> parse_trace(const std::string& text) {
  std::vector<TraceEntry> entries;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  sim::Ns prev = -1.0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    // Trim.
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    line = line.substr(first, last - first + 1);

    std::stringstream fields(line);
    std::string time_s, engine, node_s, gib_s;
    if (!std::getline(fields, time_s, ',') ||
        !std::getline(fields, engine, ',') ||
        !std::getline(fields, node_s, ',') ||
        !std::getline(fields, gib_s)) {
      fail(line_no, "expected time_s,engine,cpu_node,gib");
    }
    TraceEntry entry;
    try {
      entry.arrival = std::stod(time_s) * 1e9;
      entry.cpu_node = std::stoi(node_s);
      const double gib = std::stod(gib_s);
      if (gib <= 0.0) fail(line_no, "payload must be positive");
      entry.bytes = static_cast<sim::Bytes>(gib * static_cast<double>(sim::kGiB));
    } catch (const std::invalid_argument& e) {
      if (std::string(e.what()).rfind("trace line", 0) == 0) throw;
      fail(line_no, "malformed number");
    }
    if (entry.arrival < 0.0) fail(line_no, "negative arrival time");
    if (entry.cpu_node < 0) fail(line_no, "negative node");
    if (entry.arrival < prev) fail(line_no, "arrivals must be sorted");
    prev = entry.arrival;
    entry.engine = engine;
    entries.push_back(std::move(entry));
  }
  if (entries.empty()) {
    throw std::invalid_argument("trace contains no requests");
  }
  return entries;
}

std::string format_trace(const std::vector<TraceEntry>& entries) {
  std::ostringstream out;
  out << "# time_s,engine,cpu_node,gib\n";
  char buf[160];
  for (const TraceEntry& e : entries) {
    std::snprintf(buf, sizeof(buf), "%.6f,%s,%d,%.6f\n", e.arrival / 1e9,
                  e.engine.c_str(), e.cpu_node,
                  static_cast<double>(e.bytes) /
                      static_cast<double>(sim::kGiB));
    out << buf;
  }
  return out.str();
}

std::vector<TimedJob> trace_to_jobs(
    const std::vector<TraceEntry>& entries, const PcieDevice* nic,
    const std::vector<const PcieDevice*>& ssds) {
  std::vector<TimedJob> jobs;
  for (const TraceEntry& e : entries) {
    TimedJob tj;
    tj.start = e.arrival;
    tj.job.engine = e.engine;
    tj.job.cpu_node = e.cpu_node;
    tj.job.bytes_per_stream = e.bytes;
    tj.job.num_streams = 1;
    const bool is_ssd = e.engine.rfind("ssd", 0) == 0;
    if (is_ssd) {
      if (ssds.empty()) {
        throw std::invalid_argument("trace needs SSDs but none provided");
      }
      // One stream, one card: alternate cards by arrival order.
      tj.job.devices = {ssds[jobs.size() % ssds.size()]};
    } else {
      if (nic == nullptr) {
        throw std::invalid_argument("trace needs a NIC but none provided");
      }
      tj.job.devices = {nic};
    }
    jobs.push_back(std::move(tj));
  }
  return jobs;
}

}  // namespace numaio::io
