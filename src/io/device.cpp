#include "io/device.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace numaio::io {

PcieDevice::PcieDevice(fabric::Machine& machine, std::string name,
                       NodeId attach_node, PcieLink pcie,
                       std::vector<EngineSpec> engines)
    : machine_(machine),
      name_(std::move(name)),
      attach_node_(attach_node),
      irq_node_(attach_node),
      pcie_(pcie),
      engines_(std::move(engines)) {
  assert(attach_node_ >= 0 && attach_node_ < machine_.num_nodes());
  assert(machine_.topology().node(attach_node_).io_hub &&
         "device must attach to a node with an I/O hub");
  auto& solver = machine_.solver();
  engine_res_.reserve(engines_.size());
  for (const EngineSpec& e : engines_) {
    assert(e.device_cap > 0.0 && e.window_bits > 0.0);
    engine_res_.push_back(
        solver.add_resource(name_ + ":" + e.name, 1.0));
  }
  pcie_to_dev_ =
      solver.add_resource(name_ + ":pcie>dev", pcie_.data_gbps());
  pcie_from_dev_ =
      solver.add_resource(name_ + ":pcie<dev", pcie_.data_gbps());
}

void PcieDevice::set_irq_node(NodeId node) {
  assert(node >= 0 && node < machine_.num_nodes());
  irq_node_ = node;
}

const EngineSpec& PcieDevice::engine(std::string_view engine_name) const {
  for (const EngineSpec& e : engines_) {
    if (e.name == engine_name) return e;
  }
  throw std::out_of_range("PcieDevice '" + name_ + "' has no engine '" +
                          std::string(engine_name) + "'");
}

bool PcieDevice::has_engine(std::string_view engine_name) const {
  for (const EngineSpec& e : engines_) {
    if (e.name == engine_name) return true;
  }
  return false;
}

sim::ResourceId PcieDevice::engine_resource(
    std::string_view engine_name) const {
  for (std::size_t i = 0; i < engines_.size(); ++i) {
    if (engines_[i].name == engine_name) return engine_res_[i];
  }
  throw std::out_of_range("PcieDevice '" + name_ + "' has no engine '" +
                          std::string(engine_name) + "'");
}

sim::ResourceId PcieDevice::pcie_resource(bool to_device) const {
  return to_device ? pcie_to_dev_ : pcie_from_dev_;
}

std::vector<sim::ResourceId> PcieDevice::fault_resources() const {
  std::vector<sim::ResourceId> resources = engine_res_;
  resources.push_back(pcie_to_dev_);
  resources.push_back(pcie_from_dev_);
  return resources;
}

}  // namespace numaio::io
