#include "io/testbed.h"

#include "fabric/calibration.h"

namespace numaio::io {

Testbed::Testbed(std::unique_ptr<fabric::Machine> machine, NodeId device_node,
                 bool lite_nic)
    : machine_(std::move(machine)),
      host_(std::make_unique<nm::Host>(*machine_)),
      nic_(lite_nic ? make_connectx3_lite(*machine_, device_node)
                    : make_connectx3(*machine_, device_node)),
      ssds_(make_nytro_pair(*machine_, device_node)) {}

Testbed Testbed::dl585(const sim::SolveOptions& solve) {
  return dl585_with_devices_on(7, solve);
}

Testbed Testbed::dl585_with_devices_on(NodeId node,
                                       const sim::SolveOptions& solve) {
  return Testbed(
      std::make_unique<fabric::Machine>(fabric::dl585_profile(), solve),
      node);
}

Testbed Testbed::dl585_lite(const sim::SolveOptions& solve) {
  return Testbed(
      std::make_unique<fabric::Machine>(fabric::dl585_profile(), solve),
      /*device_node=*/7, /*lite_nic=*/true);
}

std::vector<const PcieDevice*> Testbed::ssds() const {
  std::vector<const PcieDevice*> out;
  out.reserve(ssds_.size());
  for (const auto& ssd : ssds_) out.push_back(ssd.get());
  return out;
}

}  // namespace numaio::io
