// HostPair: both ends of the paper's network testbed simulated in one
// resource network (Fig 2: "Another identical host is used in the network
// performance test").
//
// The single-host FioRunner approximates the far end with an analytic
// aggregate cap (FioJob::peer_node). HostPair models it fully: host B's
// fabric, memory controllers and CPUs live in the same solver, each
// stream chains the send-side NIC engine, the 40 GbE wire, and the
// receive-side NIC engine, and contention composes end to end — including
// full-duplex scenarios the analytic form cannot express.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "io/fio.h"
#include "io/nic.h"

namespace numaio::io {

class HostPair {
 public:
  /// Two calibrated DL585s, NICs on node 7 of each, wired back to back.
  static HostPair dl585();

  fabric::Machine& machine() { return *machine_; }
  nm::Host& host() { return *host_; }
  const PcieDevice& nic_a() const { return *nic_a_; }
  const PcieDevice& nic_b() const { return *nic_b_; }

  /// Host B's node `node` in the pair numbering.
  NodeId peer(NodeId node) const;

  /// One directed network job with explicit bindings on both ends.
  /// `engine` names the host-A-side personality; host B automatically
  /// runs the complementary one.
  struct NetJob {
    std::string engine = kTcpSend;
    NodeId local_node = 0;  ///< Binding on host A.
    NodeId peer_node = 0;   ///< Binding on host B (B-local numbering).
    int num_streams = 1;
    sim::Bytes bytes_per_stream = 400 * sim::kGiB;
  };

  /// Runs one job alone.
  FioResult run(const NetJob& job);

  /// Runs jobs concurrently (e.g. full-duplex: a send job and a receive
  /// job at once). Results indexed like `jobs`.
  std::vector<FioResult> run_concurrent(std::span<const NetJob> jobs);

 private:
  HostPair();

  std::unique_ptr<fabric::Machine> machine_;
  std::unique_ptr<nm::Host> host_;
  std::unique_ptr<PcieDevice> nic_a_;
  std::unique_ptr<PcieDevice> nic_b_;
  sim::ResourceId wire_ab_ = 0;
  sim::ResourceId wire_ba_ = 0;
  /// Target-side DMA tag pools, one per NIC and direction (RX and TX
  /// engines are separate silicon).
  sim::ResourceId target_a_to_mem_ = 0;
  sim::ResourceId target_a_from_mem_ = 0;
  sim::ResourceId target_b_to_mem_ = 0;
  sim::ResourceId target_b_from_mem_ = 0;
};

}  // namespace numaio::io
