// Transfer-trace import/export. A production data-mover's request log
// replays against the simulated host, so placement policies can be
// evaluated on *real* arrival patterns rather than synthetic ones
// (the workflow the paper's DOE data-transfer deployments [25] imply).
//
// CSV format, one request per line, '#' comments allowed:
//
//   # time_s,engine,cpu_node,gib
//   0.000,rdma_write,7,32
//   1.250,tcp_recv,2,8
//
// time_s is the arrival time in seconds; gib the payload in GiB.
#pragma once

#include <string>
#include <vector>

#include "io/fio.h"

namespace numaio::io {

struct TraceEntry {
  sim::Ns arrival = 0.0;
  std::string engine;
  NodeId cpu_node = 0;
  sim::Bytes bytes = 0;
};

/// Parses the CSV text; throws std::invalid_argument with line numbers.
std::vector<TraceEntry> parse_trace(const std::string& text);

/// Renders entries back to CSV (header comment included). Round-trips
/// through parse_trace().
std::string format_trace(const std::vector<TraceEntry>& entries);

/// Builds timed single-stream jobs for the entries against a device set
/// (SSD engines get the SSD cards, network engines the NIC).
std::vector<TimedJob> trace_to_jobs(const std::vector<TraceEntry>& entries,
                                    const PcieDevice* nic,
                                    const std::vector<const PcieDevice*>& ssds);

}  // namespace numaio::io
