// Testbed: the paper's complete experimental rig (Fig 2) in one object —
// the DL585 host with a ConnectX-3 NIC and two Nytro WarpDrive SSDs, all
// attached to node 7. The "other identical host" of the network tests is
// never the bottleneck (both ends are tuned per vendor recommendations),
// so the network peer is represented by the NIC engines' ceilings.
#pragma once

#include <memory>
#include <vector>

#include "io/fio.h"
#include "io/nic.h"
#include "io/ssd.h"
#include "simcore/solve_options.h"

namespace numaio::io {

class Testbed {
 public:
  /// The paper's configuration: devices on node 7. `solve` configures
  /// the machine solver's execution engine (threads / component
  /// partitioning; simcore/solve_options.h); the default stays the
  /// serial monolithic solver.
  static Testbed dl585(const sim::SolveOptions& solve = {});

  /// A DL585-calibrated rig with devices attached to another I/O-hub node
  /// (node 1 carries the second hub).
  static Testbed dl585_with_devices_on(NodeId node,
                                       const sim::SolveOptions& solve = {});

  /// The mixed-fleet "lite" SKU: the same DL585 fabric but carrying the
  /// previous-generation NIC (io::make_connectx3_lite, ~55% of the
  /// ConnectX-3's ceilings). Distinct enough that fleet-level gap
  /// classification separates the two SKUs into different classes.
  static Testbed dl585_lite(const sim::SolveOptions& solve = {});

  fabric::Machine& machine() { return *machine_; }
  nm::Host& host() { return *host_; }
  PcieDevice& nic() { return *nic_; }
  /// Both SSD cards (for FioJob::devices).
  std::vector<const PcieDevice*> ssds() const;
  NodeId device_node() const { return nic_->attach_node(); }

 private:
  Testbed(std::unique_ptr<fabric::Machine> machine, NodeId device_node,
          bool lite_nic = false);

  std::unique_ptr<fabric::Machine> machine_;
  std::unique_ptr<nm::Host> host_;
  std::unique_ptr<PcieDevice> nic_;
  std::vector<std::unique_ptr<PcieDevice>> ssds_;
};

}  // namespace numaio::io
