// The 40 GbE RDMA-capable network adapter of the paper's testbed
// (Mellanox ConnectX-3 EN dual-port, RoCE, Table II), with four transfer
// personalities:
//   tcp_send / tcp_recv   — kernel TCP (cubic, 128 KB blocks, MTU 9000)
//   rdma_write / rdma_read — offloaded one-sided RDMA
//
// Calibration targets (per-binding aggregates at >= 4 streams):
//   Table IV (send side):  TCP 20.3/20.4/16.2, RDMA_WRITE 23.3/23.2/17.1
//   Table V  (recv side):  TCP 21.2/20.0/20.6/14.4, RDMA_READ
//                          22.0/22.0/18.3/16.1
// TCP burns ~1 CPU unit per Gbps on the application node plus interrupt
// work on the device-local node, which is what makes binding on node 7
// *worse* than its neighbor node 6 (§IV-B1); RDMA offloads protocol work
// and stays stable.
#pragma once

#include <memory>

#include "io/device.h"

namespace numaio::io {

inline constexpr char kTcpSend[] = "tcp_send";
inline constexpr char kTcpRecv[] = "tcp_recv";
inline constexpr char kRdmaWrite[] = "rdma_write";
inline constexpr char kRdmaRead[] = "rdma_read";

/// Builds the ConnectX-3 model attached to `node` (node 7 in the paper).
/// The measured placement residuals of the paper's testbed apply when the
/// NIC sits in that placement; `residual_origin` names the node playing
/// the role of the paper's node 7 (for host B of a pair, its own node 7 in
/// pair numbering), shifting the residual keys accordingly. Any other
/// placement gets no residuals.
std::unique_ptr<PcieDevice> make_connectx3(fabric::Machine& machine,
                                           NodeId node,
                                           NodeId residual_origin = 7);

/// A previous-generation 25 GbE-class part with the ConnectX-3's
/// personalities at ~55% of its ceilings and windows (and none of the
/// testbed-specific residuals — those are measurements of one rig). This
/// is the "lite" host SKU of mixed fleets (fleet::FleetConfig::
/// alt_sku_every): far enough from the ConnectX-3 that the §VI gap
/// classifier puts the two SKUs in different capacity classes.
std::unique_ptr<PcieDevice> make_connectx3_lite(fabric::Machine& machine,
                                                NodeId node);

/// The personality the *other* end of a connection runs: our send is the
/// peer's receive and vice versa. Returns nullptr for non-network engines.
const char* complementary_engine(const std::string& engine);

}  // namespace numaio::io
