// Whole-host memory characterization drivers:
//  - stream_matrix(): the N x N bandwidth matrix of Figure 3 (every
//    CPU-node x memory-node binding),
//  - cpu_centric()/memory_centric(): the two node-level models of Figure 4,
//    which §IV-B tests (and rejects) as predictors of I/O performance.
#pragma once

#include <vector>

#include "mem/stream.h"

namespace numaio::mem {

struct BandwidthMatrix {
  /// bw[cpu_node][mem_node], best-of-repetitions STREAM bandwidth.
  std::vector<std::vector<sim::Gbps>> bw;

  int num_nodes() const { return static_cast<int>(bw.size()); }
  sim::Gbps at(NodeId cpu, NodeId mem) const {
    return bw[static_cast<std::size_t>(cpu)][static_cast<std::size_t>(mem)];
  }
};

/// Runs STREAM for every (cpu node, memory node) pair — Figure 3. The
/// config aggregate defaults to StreamConfig's in-struct values, matching
/// the convention of the other entry points (IoModelConfig & co).
BandwidthMatrix stream_matrix(nm::Host& host, const StreamConfig& config = {});

/// "CPU centric" model of `target`: benchmark runs on `target`, memory
/// varies over all nodes — Figure 4(a). Element i is the bandwidth with
/// data on node i.
std::vector<sim::Gbps> cpu_centric(nm::Host& host, NodeId target,
                                   const StreamConfig& config = {});

/// "Memory centric" model of `target`: data lives on `target`, the
/// benchmark's node varies — Figure 4(b).
std::vector<sim::Gbps> memory_centric(nm::Host& host, NodeId target,
                                      const StreamConfig& config = {});

}  // namespace numaio::mem
