#include "mem/numademo.h"

#include <algorithm>
#include <cassert>

#include "mem/copy.h"

namespace numaio::mem {

std::string to_string(DemoModule module) {
  switch (module) {
    case DemoModule::kMemset:
      return "memset";
    case DemoModule::kMemcpy:
      return "memcpy";
    case DemoModule::kStreamCopy:
      return "stream-copy";
    case DemoModule::kForwardWalk:
      return "forward-walk";
    case DemoModule::kBackwardWalk:
      return "backward-walk";
    case DemoModule::kRandomAccess:
      return "random-access";
    case DemoModule::kPtrChase:
      return "ptr-chase";
  }
  return "?";
}

std::vector<DemoModule> all_demo_modules() {
  return {DemoModule::kMemset,       DemoModule::kMemcpy,
          DemoModule::kStreamCopy,   DemoModule::kForwardWalk,
          DemoModule::kBackwardWalk, DemoModule::kRandomAccess,
          DemoModule::kPtrChase};
}

namespace {

int demo_threads(const fabric::Machine& machine, NodeId cpu_node,
                 const DemoConfig& config) {
  const int cores = machine.cores_per_node(cpu_node);
  return config.threads == 0 ? cores : std::min(config.threads, cores);
}

/// Aggregate PIO load bandwidth of the whole node over path (t, m).
double load_leg(const fabric::Machine& machine, NodeId t, NodeId m) {
  return machine.path(t, m).stream_bw * (1.0 + kPioStoreFactor);
}

/// Rate cap of the module's access loop, before fabric capacities.
double module_rate_cap(const fabric::Machine& machine, DemoModule module,
                       NodeId t, NodeId m, int threads) {
  const int cores = machine.cores_per_node(t);
  const double scale = static_cast<double>(threads) / cores;
  const double leg = load_leg(machine, t, m);
  const sim::Ns lat = machine.path(t, m).dma_lat;
  switch (module) {
    case DemoModule::kMemset:
      // Posted stores only: each store costs a kPioStoreFactor share of
      // the issue budget, so the byte rate is leg / kPioStoreFactor
      // (fabric capacities clamp it below).
      return scale * leg / kPioStoreFactor;
    case DemoModule::kMemcpy:
    case DemoModule::kStreamCopy:
      // Load + posted store against the same node.
      return scale * leg / (1.0 + kPioStoreFactor);
    case DemoModule::kForwardWalk:
      return scale * leg;
    case DemoModule::kBackwardWalk:
      // The stride prefetcher recovers only part of the forward rate.
      return scale * leg * 0.75;
    case DemoModule::kRandomAccess:
      // Independent dependent-load chains per core: latency-bound, with a
      // couple of misses overlapped by out-of-order execution.
      return threads * 2.0 * 512.0 / lat;
    case DemoModule::kPtrChase:
      // One serialized 64 B load in flight per thread.
      return threads * 512.0 / lat;
  }
  return 0.0;
}

/// Fabric usages of the module's loop.
std::vector<sim::Usage> module_usages(const fabric::Machine& machine,
                                      DemoModule module, NodeId t,
                                      NodeId m) {
  std::vector<sim::Usage> usages;
  const bool loads = module != DemoModule::kMemset;
  const bool stores = module == DemoModule::kMemset ||
                      module == DemoModule::kMemcpy ||
                      module == DemoModule::kStreamCopy;
  if (loads) {
    usages.push_back({machine.mc_read(m), 1.0});
    if (t != m) usages.push_back({machine.fabric_resource(m, t), 1.0});
  }
  if (stores) {
    if (t != m) usages.push_back({machine.fabric_resource(t, m), 1.0});
    usages.push_back({machine.mc_write(m), 1.0});
  }
  return usages;
}

double run_rate(fabric::Machine& machine, DemoModule module, NodeId t,
                NodeId m, int threads) {
  auto& solver = machine.solver();
  const auto usages = module_usages(machine, module, t, m);
  const double cap = module_rate_cap(machine, module, t, m, threads);
  const sim::FlowId flow = solver.add_flow(usages, cap);
  const double rate = solver.solve()[flow];
  solver.remove_flow(flow);
  return rate;
}

}  // namespace

DemoResult run_demo(nm::Host& host, DemoModule module, NodeId cpu_node,
                    NodeId mem_node, const DemoConfig& config) {
  fabric::Machine& machine = host.machine();
  const int threads = demo_threads(machine, cpu_node, config);

  // Touch the allocator so policies and accounting behave like the real
  // tool (working set bound to mem_node).
  nm::Buffer buffer = host.alloc_on_node(config.working_set, mem_node);
  DemoResult result;
  result.module = module;
  result.cpu_node = cpu_node;
  result.mem_node = mem_node;
  result.bandwidth = run_rate(machine, module, cpu_node, mem_node, threads);
  host.free(buffer);
  return result;
}

std::vector<DemoTableRow> demo_policy_table(nm::Host& host, NodeId cpu_node,
                                            const DemoConfig& config) {
  fabric::Machine& machine = host.machine();
  const int n = host.num_configured_nodes();
  const int threads = demo_threads(machine, cpu_node, config);

  std::vector<DemoTableRow> rows;
  for (DemoModule module : all_demo_modules()) {
    DemoTableRow row;
    row.module = module;
    row.local = run_rate(machine, module, cpu_node, cpu_node, threads);
    row.remote_worst = row.local;
    for (NodeId m = 0; m < n; ++m) {
      if (m == cpu_node) continue;
      row.remote_worst = std::min(
          row.remote_worst, run_rate(machine, module, cpu_node, m, threads));
    }
    // Interleaved pages are touched round-robin: the loop spends
    // 1/rate_m time per byte on node m, so the aggregate is the harmonic
    // mean across nodes.
    nm::Buffer buffer = host.alloc_interleaved(config.working_set);
    double denom = 0.0;
    for (NodeId m = 0; m < n; ++m) {
      denom += 1.0 / run_rate(machine, module, cpu_node, m, threads);
    }
    row.interleaved = static_cast<double>(n) / denom;
    host.free(buffer);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace numaio::mem
