// numademo-style memory test modules (§II-B).
//
// The Linux numademo utility "shows the effect of possible resource
// affinity policies" with seven test modules (memset, memcpy, STREAM,
// forward/backward strides, random access, ...). The paper's contribution
// ships as an *eighth* module, iomodel, added "to the standard numademo
// software package" (§V-B) — model::build_iomodel here.
//
// Each module exercises the fabric differently:
//   kMemset        store-only; no load leg.
//   kMemcpy        PIO copy loop (load + posted store).
//   kStreamCopy    the STREAM Copy kernel (mem/stream.h protocol).
//   kForwardWalk   sequential loads; prefetch-friendly (full PIO rate).
//   kBackwardWalk  reverse loads; prefetcher partially defeated.
//   kRandomAccess  dependent random loads; latency-bound, not
//                  bandwidth-bound — scales with 1/latency, not with the
//                  PIO issue window.
//   kPtrChase      fully serialized pointer chase; one outstanding load.
#pragma once

#include <string>
#include <vector>

#include "nm/host.h"

namespace numaio::mem {

using topo::NodeId;

enum class DemoModule {
  kMemset,
  kMemcpy,
  kStreamCopy,
  kForwardWalk,
  kBackwardWalk,
  kRandomAccess,
  kPtrChase,
};

std::string to_string(DemoModule module);

/// All seven modules, in numademo's order.
std::vector<DemoModule> all_demo_modules();

struct DemoConfig {
  sim::Bytes working_set = 64 * sim::kMiB;
  int threads = 0;  ///< 0 = all cores of the executing node.
};

struct DemoResult {
  DemoModule module = DemoModule::kMemset;
  NodeId cpu_node = 0;
  NodeId mem_node = 0;
  sim::Gbps bandwidth = 0.0;  ///< Effective data rate of the access loop.
};

/// Runs one module with threads on cpu_node against memory on mem_node
/// under the given policy-resolved placement.
DemoResult run_demo(nm::Host& host, DemoModule module, NodeId cpu_node,
                    NodeId mem_node, const DemoConfig& config = {});

/// numademo's headline table: every module against the local node, a
/// remote node, and interleaved memory, for a given executing node.
/// Returns rows of (module, local, remote-worst, interleaved) bandwidths.
struct DemoTableRow {
  DemoModule module;
  sim::Gbps local = 0.0;
  sim::Gbps remote_worst = 0.0;
  sim::Gbps interleaved = 0.0;
};
std::vector<DemoTableRow> demo_policy_table(nm::Host& host, NodeId cpu_node,
                                            const DemoConfig& config = {});

}  // namespace numaio::mem
