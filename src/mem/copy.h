// Bulk memory-copy engines over the simulated fabric.
//
// The paper distinguishes two ways bytes move through a NUMA host (§IV-C):
//  - kPio: a CPU load/store loop (what STREAM does). Throughput is bounded
//    by the issuing node's outstanding-request budget over its PIO path,
//    and every byte makes a round trip: loaded src -> threads, stored
//    threads -> dst.
//  - kStreaming: offloaded bulk transfer (a device DMA engine, or the
//    non-temporal/streaming copy the proposed methodology uses to *imitate*
//    a DMA engine). Throughput is bounded by the streaming path capacity.
// The same CopyTask can be run on either engine, which is exactly the
// comparison the paper draws.
#pragma once

#include <vector>

#include "fabric/machine.h"
#include "simcore/flow_solver.h"

namespace numaio::mem {

using topo::NodeId;

enum class CopyEngine {
  kPio,
  kStreaming,
};

struct CopyTask {
  NodeId threads_node = 0;  ///< Node the copy threads are pinned to.
  NodeId src_node = 0;      ///< Memory node of the source buffer.
  NodeId dst_node = 0;      ///< Memory node of the destination buffer.
  int threads = 0;          ///< 0 = all cores of threads_node.
  CopyEngine engine = CopyEngine::kStreaming;
};

/// Fraction of a PIO thread's issue budget a (posted) store consumes
/// relative to a load. Loads wait for data; stores post and continue.
inline constexpr double kPioStoreFactor = 0.35;

/// Outstanding bits of a streaming copy engine. Large enough that streaming
/// copies are fabric-capacity-bound, not window-bound, on every path of the
/// calibrated host — the property that lets them stand in for device DMA.
inline constexpr double kStreamingWindowBits = 60000.0;

/// The task's own aggregate rate cap (its engine/window limit), before any
/// sharing with concurrent tasks.
sim::Gbps copy_rate_cap(const fabric::Machine& machine, const CopyTask& task);

/// The fabric resources the task occupies (both legs of the copy).
std::vector<sim::Usage> copy_usages(const fabric::Machine& machine,
                                    const CopyTask& task);

/// Steady-state bandwidth of the task run alone on the machine: its rate
/// cap subject to fabric/memory-controller capacities.
sim::Gbps run_copy_alone(fabric::Machine& machine, const CopyTask& task);

}  // namespace numaio::mem
