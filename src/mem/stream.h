// The STREAM benchmark (McCalpin [15]) over the simulated host, following
// the paper's protocol exactly (§III-B1, §IV-A):
//  - four kernels (Copy/Scale/Add/Triad) on large arrays,
//  - arrays at least 4x the LLC, or the run is cache-contaminated,
//  - multi-threaded (one thread per core of the executing node),
//  - each configuration run 100 times, reporting the *maximum*,
//  - CPU and memory nodes pinned externally (numactl-style),
//  - Copy is the kernel used for characterization (no computation, closest
//    to I/O transfer behaviour).
#pragma once

#include <cstdint>
#include <string>

#include "nm/host.h"
#include "simcore/rng.h"

namespace numaio::mem {

using topo::NodeId;

enum class StreamKind { kCopy, kScale, kAdd, kTriad };

std::string to_string(StreamKind kind);

/// Standard config aggregate (DESIGN.md §11 "Config aggregates"): plain
/// struct, in-struct field defaults, passed const& with a `= {}` default
/// so call sites name only the knobs they change. io::StreamSpec,
/// faults::RandomPlanConfig and sim::SolveOptions share the shape.
struct StreamConfig {
  StreamKind kind = StreamKind::kCopy;
  /// Array length in 8-byte elements. Default follows the paper: the LLC is
  /// 5 MB, so arrays must hold at least 2,621,440 "long integers" (20 MB).
  std::uint64_t array_elems = 2'621'440;
  int threads = 0;          ///< 0 = all cores of the executing node.
  int repetitions = 100;
  std::uint64_t seed = 20130213;  ///< Master seed for run-to-run noise.
};

struct StreamResult {
  sim::Gbps best = 0.0;   ///< Max over repetitions (what the paper reports).
  sim::Gbps mean = 0.0;
  sim::Gbps worst = 0.0;
  /// Outlier-robust estimate: the 10%-trimmed mean of the repetitions.
  /// Unlike `best` (the paper's max-of-100) or the plain `mean`, one
  /// interference-poisoned rep cannot drag it, so degraded-mode consumers
  /// should prefer it for characterization.
  sim::Gbps robust = 0.0;
  /// Median absolute deviation of the repetitions, Gbps.
  sim::Gbps mad = 0.0;
  /// True when the reps dispersed suspiciously (MAD/median above the
  /// robust_summarize threshold) or the run was cache-contaminated — the
  /// numbers are usable but should not gate re-characterization decisions.
  bool low_confidence = false;
  /// True when the arrays were too small relative to the LLC, so results
  /// are inflated by cache reuse and untrustworthy for characterization.
  bool cache_contaminated = false;
};

class StreamBenchmark {
 public:
  explicit StreamBenchmark(nm::Host& host, const StreamConfig& config = {});

  /// Runs the benchmark with threads pinned to cpu_node and all arrays
  /// allocated on mem_node (the numactl binding of §IV-A).
  StreamResult run(NodeId cpu_node, NodeId mem_node);

  const StreamConfig& config() const { return config_; }

 private:
  nm::Host& host_;
  StreamConfig config_;
};

}  // namespace numaio::mem
