#include "mem/membench.h"

namespace numaio::mem {

BandwidthMatrix stream_matrix(nm::Host& host, const StreamConfig& config) {
  const int n = host.num_configured_nodes();
  StreamBenchmark bench(host, config);
  BandwidthMatrix m;
  m.bw.assign(static_cast<std::size_t>(n),
              std::vector<sim::Gbps>(static_cast<std::size_t>(n), 0.0));
  for (NodeId cpu = 0; cpu < n; ++cpu) {
    for (NodeId mem = 0; mem < n; ++mem) {
      m.bw[static_cast<std::size_t>(cpu)][static_cast<std::size_t>(mem)] =
          bench.run(cpu, mem).best;
    }
  }
  return m;
}

std::vector<sim::Gbps> cpu_centric(nm::Host& host, NodeId target,
                                   const StreamConfig& config) {
  const int n = host.num_configured_nodes();
  StreamBenchmark bench(host, config);
  std::vector<sim::Gbps> out(static_cast<std::size_t>(n), 0.0);
  for (NodeId mem = 0; mem < n; ++mem) {
    out[static_cast<std::size_t>(mem)] = bench.run(target, mem).best;
  }
  return out;
}

std::vector<sim::Gbps> memory_centric(nm::Host& host, NodeId target,
                                      const StreamConfig& config) {
  const int n = host.num_configured_nodes();
  StreamBenchmark bench(host, config);
  std::vector<sim::Gbps> out(static_cast<std::size_t>(n), 0.0);
  for (NodeId cpu = 0; cpu < n; ++cpu) {
    out[static_cast<std::size_t>(cpu)] = bench.run(cpu, target).best;
  }
  return out;
}

}  // namespace numaio::mem
