#include "mem/stream.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "mem/copy.h"
#include "simcore/stats.h"

namespace numaio::mem {

std::string to_string(StreamKind kind) {
  switch (kind) {
    case StreamKind::kCopy:
      return "Copy";
    case StreamKind::kScale:
      return "Scale";
    case StreamKind::kAdd:
      return "Add";
    case StreamKind::kTriad:
      return "Triad";
  }
  return "?";
}

namespace {

int arrays_needed(StreamKind kind) {
  return (kind == StreamKind::kAdd || kind == StreamKind::kTriad) ? 3 : 2;
}

// The four kernels "exhibit a similar performance on modern machines"
// (§III-B1); these small factors model the residual differences (Scale adds
// a multiply per element; Add/Triad stream three arrays, slightly improving
// bus efficiency per kernel iteration).
double kind_factor(StreamKind kind) {
  switch (kind) {
    case StreamKind::kCopy:
      return 1.0;
    case StreamKind::kScale:
      return 0.985;
    case StreamKind::kAdd:
      return 1.025;
    case StreamKind::kTriad:
      return 1.018;
  }
  return 1.0;
}

}  // namespace

StreamBenchmark::StreamBenchmark(nm::Host& host, const StreamConfig& config)
    : host_(host), config_(config) {
  assert(config_.array_elems > 0);
  assert(config_.repetitions > 0);
}

StreamResult StreamBenchmark::run(NodeId cpu_node, NodeId mem_node) {
  const sim::Bytes array_bytes = config_.array_elems * 8;
  const int narrays = arrays_needed(config_.kind);

  // numactl-style static binding: all arrays on mem_node.
  std::vector<nm::Buffer> buffers;
  buffers.reserve(static_cast<std::size_t>(narrays));
  for (int i = 0; i < narrays; ++i) {
    buffers.push_back(host_.alloc_on_node(array_bytes, mem_node));
  }

  // STREAM's array-sizing rule: each array at least 4x the largest cache.
  const double llc_bytes = host_.machine().profile().llc_mb * 1e6;
  const bool contaminated =
      static_cast<double>(array_bytes) < 4.0 * llc_bytes;

  CopyTask task;
  task.threads_node = cpu_node;
  task.src_node = mem_node;
  task.dst_node = mem_node;
  task.threads = config_.threads;
  task.engine = CopyEngine::kPio;
  double base =
      run_copy_alone(host_.machine(), task) * kind_factor(config_.kind);

  if (contaminated) {
    // Undersized arrays partially fit in cache; measured "bandwidth"
    // inflates toward cache throughput as the working set shrinks.
    const double fit =
        1.0 - static_cast<double>(array_bytes) / (4.0 * llc_bytes);
    base *= 1.0 + 0.9 * fit;
  }

  sim::Rng rng = sim::Rng(config_.seed)
                     .fork(static_cast<std::uint64_t>(cpu_node),
                           static_cast<std::uint64_t>(mem_node));
  StreamResult result;
  result.cache_contaminated = contaminated;
  result.worst = sim::kUnlimited;
  double sum = 0.0;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(config_.repetitions));
  for (int rep = 0; rep < config_.repetitions; ++rep) {
    // Run-to-run noise is one-sided: OS jitter only ever *slows* a rep,
    // which is why the paper reports the max of 100 runs.
    const double slowdown = std::abs(rng.normal(0.010, 0.008));
    const double value = base * (1.0 - std::min(slowdown, 0.5));
    result.best = std::max(result.best, value);
    result.worst = std::min(result.worst, value);
    sum += value;
    samples.push_back(value);
  }
  result.mean = sum / config_.repetitions;

  const sim::RobustSummary robust = sim::robust_summarize(samples);
  result.robust = robust.trimmed_mean;
  result.mad = robust.mad;
  result.low_confidence = robust.low_confidence || contaminated;

  for (auto& b : buffers) host_.free(b);
  return result;
}

}  // namespace numaio::mem
