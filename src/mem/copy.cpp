#include "mem/copy.h"

#include <algorithm>
#include <cassert>

namespace numaio::mem {

namespace {

int effective_threads(const fabric::Machine& machine, const CopyTask& task) {
  const int cores = machine.cores_per_node(task.threads_node);
  const int t = task.threads == 0 ? cores : task.threads;
  assert(t > 0);
  return std::min(t, cores);
}

/// Per-node-aggregate PIO bandwidth of a pure load stream from `threads` on
/// node t against memory on node m. Derived from the calibrated STREAM
/// matrix: a STREAM Copy against a single node m drives both a load leg and
/// a (discounted) store leg at the same rate, so
///   stream_bw = leg / (1 + kPioStoreFactor).
double pio_leg_bw(const fabric::Machine& machine, NodeId t, NodeId m) {
  return machine.path(t, m).stream_bw * (1.0 + kPioStoreFactor);
}

}  // namespace

sim::Gbps copy_rate_cap(const fabric::Machine& machine, const CopyTask& task) {
  const int threads = effective_threads(machine, task);
  const int cores = machine.cores_per_node(task.threads_node);
  const double thread_scale =
      static_cast<double>(threads) / static_cast<double>(cores);

  switch (task.engine) {
    case CopyEngine::kPio: {
      // A PIO copy splits each thread's issue budget between loads from
      // src and posted stores to dst; the two legs run at the same byte
      // rate R, so R * (1/leg_src + kappa/leg_dst) = 1 at saturation.
      const double leg_src = pio_leg_bw(machine, task.threads_node,
                                        task.src_node);
      const double leg_dst = pio_leg_bw(machine, task.threads_node,
                                        task.dst_node);
      const double rate =
          1.0 / (1.0 / leg_src + kPioStoreFactor / leg_dst);
      return rate * thread_scale;
    }
    case CopyEngine::kStreaming: {
      // Window-limited per path leg; both legs carry the full rate.
      const auto& machine_paths = machine.profile().paths;
      double cap = kStreamingWindowBits /
                   machine_paths.at(task.src_node, task.threads_node).dma_lat;
      cap = std::min(cap, kStreamingWindowBits /
                              machine_paths.at(task.threads_node,
                                               task.dst_node).dma_lat);
      return cap * thread_scale;
    }
  }
  return 0.0;
}

std::vector<sim::Usage> copy_usages(const fabric::Machine& machine,
                                    const CopyTask& task) {
  return machine.copy_usages(task.threads_node, task.src_node, task.dst_node);
}

sim::Gbps run_copy_alone(fabric::Machine& machine, const CopyTask& task) {
  auto& solver = machine.solver();
  const sim::FlowId flow =
      solver.add_flow(copy_usages(machine, task), copy_rate_cap(machine, task));
  const sim::Gbps rate = solver.solve()[flow];
  solver.remove_flow(flow);
  return rate;
}

}  // namespace numaio::mem
