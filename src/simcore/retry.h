// Retry/backoff policy and per-measurement outcome records.
//
// Under fault injection a bandwidth sample is no longer a number — it is a
// number plus the story of how it was obtained: did the transfer finish in
// one attempt, how many retries did it need, was it abandoned, and how much
// should downstream consumers (classification, scheduling) trust it. Every
// measuring layer (io::FioRunner streams, model::build_iomodel repetitions)
// attaches a MeasurementOutcome to its samples; model::scheduler and
// model::characterize read the outcomes to decide between the full model
// and the hop-distance fallback.
#pragma once

#include <cstdint>
#include <string>

#include "simcore/rng.h"
#include "simcore/units.h"

namespace numaio::sim {

/// Bounded retry with exponential backoff and jitter. `timeout` is the
/// per-attempt budget (0 = no timeout); an attempt exceeding it is aborted
/// and retried until `max_retries` attempts have been burned.
struct RetryPolicy {
  int max_retries = 3;          ///< Retries after the first attempt.
  Ns timeout = 0.0;             ///< Per-attempt budget; 0 = unlimited.
  Ns base_backoff = 1.0e6;      ///< First backoff (1 ms).
  double multiplier = 2.0;      ///< Exponential growth per retry.
  double jitter_frac = 0.25;    ///< Uniform +/- fraction around the delay.
  Ns max_backoff = 60.0e9;      ///< Ceiling on any single delay.
};

/// Backoff before retry number `attempt` (1-based: the delay after the
/// first failure is backoff_delay(policy, 1, rng)). Deterministic given the
/// rng state; jitter decorrelates retry storms across streams.
Ns backoff_delay(const RetryPolicy& policy, int attempt, Rng& rng);

/// The provenance of one bandwidth sample.
struct MeasurementOutcome {
  bool ok = true;          ///< The measurement completed (possibly retried).
  int retries = 0;         ///< Attempts burned beyond the first.
  bool aborted = false;    ///< Gave up: the sample is partial or missing.
  /// [0, 1]: 1 = clean single attempt with tight dispersion; degraded by
  /// retries, dispersion, and active fault windows; 0 = aborted.
  double confidence = 1.0;
};

/// "ok", "ok r2 c0.85", "aborted r3", ... — compact report form.
std::string to_string(const MeasurementOutcome& outcome);

}  // namespace numaio::sim
