#include "simcore/fluid_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

namespace numaio::sim {

namespace {
constexpr double kBitEps = 1e-6;  // bits of slack treated as "finished"
}

FluidSimulation::TransferId FluidSimulation::start_transfer(
    std::vector<Usage> usages, Bytes bytes, Gbps rate_cap,
    CompletionFn on_complete) {
  return start_transfer_at(now_, std::move(usages), bytes, rate_cap,
                           std::move(on_complete));
}

FluidSimulation::TransferId FluidSimulation::start_transfer_at(
    Ns at, std::vector<Usage> usages, Bytes bytes, Gbps rate_cap,
    CompletionFn on_complete) {
  assert(at >= now_ && "cannot start a transfer in the past");
  assert(bytes > 0);
  Transfer t;
  t.usages = std::move(usages);
  t.rate_cap = rate_cap;
  t.remaining_bits = static_cast<double>(bytes) * 8.0;
  t.on_complete = std::move(on_complete);
  t.stats.bytes = bytes;
  transfers_.push_back(std::move(t));
  const TransferId id = transfers_.size() - 1;
  if (at <= now_) {
    activate(id);
  } else {
    // Descending by time (ties: later id last) so the soonest start is at
    // the back and pops cheaply. A positional insert keeps the invariant
    // at O(log n + shift) instead of the former full re-sort per arrival.
    const Pending p{at, id};
    const auto later = [](const Pending& a, const Pending& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    };
    pending_.insert(
        std::upper_bound(pending_.begin(), pending_.end(), p, later), p);
  }
  return id;
}

void FluidSimulation::activate(TransferId id) {
  Transfer& t = transfers_[id];
  assert(!t.active && !t.stats.done);
  t.flow = solver_.add_flow(t.usages, t.rate_cap);
  t.active = true;
  t.stats.start = now_;
  // Fresh transfers append (ids grow monotonically); activations out of
  // pending order insert in place to keep the index sorted.
  if (active_.empty() || active_.back() < id) {
    active_.push_back(id);
  } else {
    active_.insert(std::lower_bound(active_.begin(), active_.end(), id), id);
  }
}

void FluidSimulation::complete(TransferId id) {
  Transfer& t = transfers_[id];
  assert(t.active);
  solver_.remove_flow(t.flow);
  t.active = false;
  t.stats.done = true;
  t.stats.end = now_;
  t.stats.bytes_moved = t.stats.bytes;
  const auto it = std::lower_bound(active_.begin(), active_.end(), id);
  assert(it != active_.end() && *it == id);
  active_.erase(it);
  if (t.on_complete) t.on_complete(id, now_);
}

void FluidSimulation::complete_batch() {
  // Three phases: detach every due flow with one bulk removal (a single
  // epoch bump — the burst's whole point), flip all completion state,
  // then fire callbacks. Callbacks run last so a callback that starts a
  // new transfer can never recycle a FlowId the sweep still holds, and
  // an abort aimed at a same-instant sibling sees it already done.
  batch_flows_.clear();
  for (const TransferId id : due_) {
    Transfer& t = transfers_[id];
    assert(t.active);  // nothing runs between the due sweep and here
    batch_flows_.push_back(t.flow);
    t.active = false;
    t.stats.done = true;
    t.stats.end = now_;
    t.stats.bytes_moved = t.stats.bytes;
    const auto it = std::lower_bound(active_.begin(), active_.end(), id);
    assert(it != active_.end() && *it == id);
    active_.erase(it);
  }
  solver_.remove_flows(batch_flows_);
  for (const TransferId id : due_) {
    Transfer& t = transfers_[id];
    if (t.on_complete) t.on_complete(id, now_);
  }
}

void FluidSimulation::schedule_control(Ns at, ControlFn fn) {
  assert(fn);
  Control c{std::max(at, now_), next_control_seq_++, std::move(fn)};
  // Descending by time; FIFO at equal times (higher seq sorts earlier in
  // the vector, so the back — the next to fire — has the lowest seq).
  // Positional insert: (at, seq) is unique, so the resulting order is
  // exactly what the former full re-sort produced.
  const auto later = [](const Control& a, const Control& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  };
  controls_.insert(
      std::upper_bound(controls_.begin(), controls_.end(), c, later),
      std::move(c));
}

bool FluidSimulation::abort_transfer(TransferId id) {
  assert(id < transfers_.size());
  Transfer& t = transfers_[id];
  if (t.stats.done) return false;
  if (t.active) {
    solver_.remove_flow(t.flow);
    t.active = false;
    const auto it = std::lower_bound(active_.begin(), active_.end(), id);
    assert(it != active_.end() && *it == id);
    active_.erase(it);
  } else {
    // Not yet started: drop the pending entry.
    const auto it = std::find_if(
        pending_.begin(), pending_.end(),
        [id](const Pending& p) { return p.id == id; });
    if (it == pending_.end()) return false;  // already aborted earlier
    pending_.erase(it);
    t.stats.start = now_;
  }
  t.stats.done = true;
  t.stats.aborted = true;
  t.stats.end = now_;
  const double moved_bits =
      static_cast<double>(t.stats.bytes) * 8.0 - t.remaining_bits;
  t.stats.bytes_moved =
      static_cast<Bytes>(std::max(moved_bits, 0.0) / 8.0);
  return true;
}

Ns FluidSimulation::run() {
  while (!active_.empty() || !pending_.empty() || !controls_.empty()) {
    if (active_.empty()) {
      // Jump to the next scheduled start or control point.
      Ns next = std::numeric_limits<double>::infinity();
      if (!pending_.empty()) next = pending_.back().at;
      if (!controls_.empty()) next = std::min(next, controls_.back().at);
      now_ = std::max(now_, next);
    }
    // Activate all starts due now.
    while (!pending_.empty() && pending_.back().at <= now_) {
      const TransferId id = pending_.back().id;
      pending_.pop_back();
      activate(id);
    }
    // Fire controls due now (they may mutate capacities, abort transfers,
    // or schedule new work — including more controls at this instant).
    while (!controls_.empty() && controls_.back().at <= now_) {
      ControlFn fn = std::move(controls_.back().fn);
      controls_.pop_back();
      fn();
    }
    if (active_.empty()) continue;  // controls may have drained the run

    // A cache hit in the solver (nothing mutated since the last event)
    // makes this a cheap reference grab, not a re-solve.
    const std::vector<Gbps>& rates = solver_.solve();

    // Next completion among active transfers.
    Ns dt = std::numeric_limits<double>::infinity();
    for (const TransferId id : active_) {
      const Transfer& t = transfers_[id];
      const Gbps r = rates[t.flow];
      if (r > 0.0) dt = std::min(dt, t.remaining_bits / r);
    }
    // Next arrival or control point may preempt the completion (and keeps
    // dt finite through full-starvation windows, e.g. a stalled device).
    if (!pending_.empty()) dt = std::min(dt, pending_.back().at - now_);
    if (!controls_.empty()) dt = std::min(dt, controls_.back().at - now_);
    assert(std::isfinite(dt) &&
           "all active transfers are rate-starved with nothing pending");

    // Advance the fluid state.
    now_ += dt;
    due_.clear();
    for (const TransferId id : active_) {
      Transfer& t = transfers_[id];
      t.remaining_bits -= rates[t.flow] * dt;
      if (trace_ && dt > 0.0) {
        // Merge with the previous segment when the rate is unchanged so
        // traces stay proportional to rate *changes*, not solver calls.
        if (!t.trace.empty() && t.trace.back().rate == rates[t.flow]) {
          t.trace.back().duration += dt;
        } else {
          t.trace.push_back(RateSegment{dt, rates[t.flow]});
        }
      }
      if (t.remaining_bits <= kBitEps) due_.push_back(id);
    }
    // Complete in id order for determinism (due_ inherits active_'s
    // order). complete() may start new transfers via callbacks — they
    // begin now with a full byte count, so they can't be due — and a
    // callback may abort a later due transfer, hence the re-check.
    // Batch mode detaches the whole burst first (one solver epoch bump)
    // and fires callbacks after; see set_batch_completions.
    if (batch_completions_) {
      complete_batch();
    } else {
      for (const TransferId id : due_) {
        if (transfers_[id].active) complete(id);
      }
    }
  }
  return now_;
}

const FluidSimulation::TransferStats& FluidSimulation::stats(
    TransferId id) const {
  assert(id < transfers_.size());
  return transfers_[id].stats;
}

const std::vector<FluidSimulation::RateSegment>& FluidSimulation::trace(
    TransferId id) const {
  assert(id < transfers_.size());
  return transfers_[id].trace;
}

FluidSimulation::RateStability FluidSimulation::rate_stability(
    TransferId id) const {
  assert(id < transfers_.size());
  RateStability out;
  const auto& segments = transfers_[id].trace;
  Ns total = 0.0;
  for (const RateSegment& s : segments) total += s.duration;
  if (total <= 0.0) return out;
  for (const RateSegment& s : segments) {
    out.mean += s.rate * (s.duration / total);
  }
  double var = 0.0;
  for (const RateSegment& s : segments) {
    var += (s.rate - out.mean) * (s.rate - out.mean) * (s.duration / total);
  }
  if (out.mean > 0.0) out.cv = std::sqrt(var) / out.mean;
  return out;
}

Gbps FluidSimulation::aggregate_rate() const {
  if (transfers_.empty()) return 0.0;
  Ns first_start = std::numeric_limits<double>::infinity();
  Ns last_end = 0.0;
  Bytes total = 0;
  for (const Transfer& t : transfers_) {
    assert(t.stats.done && "aggregate_rate() is meaningful after run()");
    first_start = std::min(first_start, t.stats.start);
    last_end = std::max(last_end, t.stats.end);
    total += t.stats.bytes_moved;
  }
  return last_end > first_start ? gbps(total, last_end - first_start) : 0.0;
}

}  // namespace numaio::sim
