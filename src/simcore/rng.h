// Deterministic random number generation.
//
// Every stochastic effect in the toolkit (STREAM run-to-run noise, TCP
// contention jitter) draws from an Rng forked from a master seed with
// experiment-specific keys, so any benchmark or test run is exactly
// reproducible. The core generator is xoshiro256**; seeding and key
// derivation use splitmix64, per the generators' authors' recommendation.
#pragma once

#include <array>
#include <cstdint>

namespace numaio::sim {

/// One splitmix64 step; used for seeding and key mixing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with deterministic key-derived substreams.
class Rng {
 public:
  /// Seeds the four lanes from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Deterministic substream: a new Rng whose seed mixes this generator's
  /// original seed with `key` (the generator's own state is not consumed, so
  /// forks with different keys are order-independent).
  Rng fork(std::uint64_t key) const;

  /// Convenience two-key fork for (experiment, node)-style derivations.
  Rng fork(std::uint64_t key1, std::uint64_t key2) const;

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace numaio::sim
