#include "simcore/retry.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace numaio::sim {

Ns backoff_delay(const RetryPolicy& policy, int attempt, Rng& rng) {
  assert(attempt >= 1);
  const double growth =
      std::pow(policy.multiplier, static_cast<double>(attempt - 1));
  Ns delay = std::min(policy.base_backoff * growth, policy.max_backoff);
  if (policy.jitter_frac > 0.0) {
    delay *= rng.uniform(1.0 - policy.jitter_frac, 1.0 + policy.jitter_frac);
  }
  return std::max(delay, 0.0);
}

std::string to_string(const MeasurementOutcome& outcome) {
  char buf[64];
  if (outcome.aborted) {
    std::snprintf(buf, sizeof buf, "aborted r%d", outcome.retries);
  } else if (outcome.retries > 0 || outcome.confidence < 1.0) {
    std::snprintf(buf, sizeof buf, "ok r%d c%.2f", outcome.retries,
                  outcome.confidence);
  } else {
    std::snprintf(buf, sizeof buf, "ok");
  }
  return buf;
}

}  // namespace numaio::sim
