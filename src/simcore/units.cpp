#include "simcore/units.h"

#include <array>
#include <cstdio>

namespace numaio::sim {

std::string format_gbps(Gbps v) {
  std::array<char, 48> buf{};
  std::snprintf(buf.data(), buf.size(), "%.2f Gbps", v);
  return std::string(buf.data());
}

std::string format_bytes(Bytes v) {
  std::array<char, 48> buf{};
  if (v >= kGiB && v % kGiB == 0) {
    std::snprintf(buf.data(), buf.size(), "%llu GiB",
                  static_cast<unsigned long long>(v / kGiB));
  } else if (v >= kMiB && v % kMiB == 0) {
    std::snprintf(buf.data(), buf.size(), "%llu MiB",
                  static_cast<unsigned long long>(v / kMiB));
  } else if (v >= kKiB && v % kKiB == 0) {
    std::snprintf(buf.data(), buf.size(), "%llu KiB",
                  static_cast<unsigned long long>(v / kKiB));
  } else {
    std::snprintf(buf.data(), buf.size(), "%llu B",
                  static_cast<unsigned long long>(v));
  }
  return std::string(buf.data());
}

}  // namespace numaio::sim
