// Hybrid fluid-flow simulation.
//
// Transfers carry a byte count over a path of FlowSolver resources. While a
// set of transfers is active, each progresses at its max-min-fair rate; the
// rate allocation is recomputed whenever a transfer starts or completes
// (the classical fluid approximation used in bandwidth studies). This gives
// exact completion times under piecewise-constant fair sharing without
// per-packet events, which is the right granularity for the paper's
// steady-state bandwidth experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "simcore/flow_solver.h"
#include "simcore/units.h"

namespace numaio::sim {

class FluidSimulation {
 public:
  using TransferId = std::size_t;
  /// Called when a transfer finishes; receives the id and completion time.
  /// The callback may start new transfers.
  using CompletionFn = std::function<void(TransferId, Ns)>;

  /// The solver holds the resource network; the simulation owns the flows it
  /// creates on it. The solver must outlive the simulation.
  explicit FluidSimulation(FlowSolver& solver) : solver_(solver) {}

  /// Same, but reconfigures the solver's execution engine (threads /
  /// component partitioning / determinism; simcore/solve_options.h) up
  /// front. run() naturally batches event application between solves —
  /// every start and control due at an instant applies before the one
  /// re-solve — so with partitioning enabled a batch dirties its
  /// components once and they re-solve together (concurrently when
  /// threads > 1).
  FluidSimulation(FlowSolver& solver, const SolveOptions& options)
      : solver_(solver) {
    solver_.set_options(options);
  }

  /// Starts a transfer immediately (at the current simulated time).
  TransferId start_transfer(std::vector<Usage> usages, Bytes bytes,
                            Gbps rate_cap = kUnlimited,
                            CompletionFn on_complete = {});

  /// Schedules a transfer to start at absolute time `at` (>= now()).
  TransferId start_transfer_at(Ns at, std::vector<Usage> usages,
                               Bytes bytes, Gbps rate_cap = kUnlimited,
                               CompletionFn on_complete = {});

  /// Control events: at absolute time `at`, `fn` runs and the fair-share
  /// allocation is recomputed. This is how time-varying *infrastructure*
  /// enters the fluid model — a fault window scaling a link capacity, a
  /// watchdog aborting a stuck transfer, a retry relaunching one — without
  /// falsifying the contention math (rates re-solve at every change
  /// point). Events due at the same instant fire in scheduling order;
  /// completions beat controls at an exact tie, so a transfer finishing
  /// exactly at its deadline counts as finished.
  using ControlFn = std::function<void()>;
  void schedule_control(Ns at, ControlFn fn);

  /// Aborts an active or not-yet-started transfer: its flow leaves the
  /// network, stats record the partial byte count and `aborted = true`,
  /// and the completion callback is NOT invoked. Returns false (and does
  /// nothing) when the transfer already finished or was already aborted.
  bool abort_transfer(TransferId id);

  /// Runs until every transfer (including ones spawned by completion
  /// callbacks) has finished or aborted and all control events have fired.
  /// Returns the final simulated time.
  Ns run();

  Ns now() const { return now_; }

  struct TransferStats {
    Ns start = 0.0;
    Ns end = 0.0;
    Bytes bytes = 0;        ///< Requested payload.
    Bytes bytes_moved = 0;  ///< Actually transferred (== bytes unless aborted).
    bool done = false;
    bool aborted = false;
    /// Average rate over the transfer's lifetime (moved bytes / lifetime).
    Gbps avg_rate() const {
      return end > start ? gbps(bytes_moved, end - start) : 0.0;
    }
  };
  const TransferStats& stats(TransferId id) const;
  std::size_t transfer_count() const { return transfers_.size(); }

  /// One constant-rate phase of a transfer's lifetime.
  struct RateSegment {
    Ns duration = 0.0;
    Gbps rate = 0.0;
  };

  /// Batched completion application (the ROADMAP's "batch event
  /// application between solves"): when enabled, all transfers finishing
  /// at the same instant detach with one FlowSolver::remove_flows call —
  /// a single epoch bump, so the burst pays one re-solve instead of one
  /// per completion — and are marked done *before* any completion
  /// callback runs. Rates and completion times are bit-identical to the
  /// per-event default (property-tested in tests/test_fluid_sim.cpp).
  /// The one observable difference: a callback aborting a transfer due
  /// at the very same instant. Per-event application lets the abort win
  /// (the later transfer counts aborted); batched application has
  /// already completed it. Default off to preserve that per-event
  /// semantic for existing callers.
  void set_batch_completions(bool on) { batch_completions_ = on; }
  bool batch_completions() const { return batch_completions_; }

  /// Enables per-transfer rate tracing (must be called before run()).
  /// The paper leans on rate stability to justify single long transfers
  /// ("the bandwidth performance is stable over the whole data transfer
  /// process", §V-B); traces let callers verify it.
  void enable_rate_trace() { trace_ = true; }

  /// The traced constant-rate segments of a finished transfer (empty when
  /// tracing was off).
  const std::vector<RateSegment>& trace(TransferId id) const;

  /// Time-weighted mean rate and the time-weighted coefficient of
  /// variation of the traced rate; cv == 0 for perfectly steady flows.
  struct RateStability {
    Gbps mean = 0.0;
    double cv = 0.0;
  };
  RateStability rate_stability(TransferId id) const;

  /// Total bytes moved divided by the time from the first start to the last
  /// completion — the "average aggregate performance" the paper reports.
  Gbps aggregate_rate() const;

 private:
  struct Transfer {
    std::vector<Usage> usages;
    Gbps rate_cap = kUnlimited;
    double remaining_bits = 0.0;
    FlowId flow = 0;
    bool active = false;
    CompletionFn on_complete;
    TransferStats stats;
    std::vector<RateSegment> trace;
  };
  struct Pending {
    Ns at;
    TransferId id;
  };
  struct Control {
    Ns at;
    std::uint64_t seq;
    ControlFn fn;
  };

  void activate(TransferId id);
  void complete(TransferId id);
  /// Completes every transfer in due_ in one sweep: bulk flow removal,
  /// then state flips, then callbacks (batch-completion mode).
  void complete_batch();

  FlowSolver& solver_;
  bool trace_ = false;
  bool batch_completions_ = false;
  Ns now_ = 0.0;
  std::vector<Transfer> transfers_;
  std::vector<Pending> pending_;   // kept sorted descending by time
  std::vector<Control> controls_;  // kept sorted descending by (time, seq)
  std::uint64_t next_control_seq_ = 0;
  // Active transfers, sorted ascending by id so the per-event loops walk
  // live work in deterministic id order instead of rescanning every
  // transfer ever started.
  std::vector<TransferId> active_;
  std::vector<TransferId> due_;  // reusable completion-sweep scratch
  std::vector<FlowId> batch_flows_;  // bulk-removal scratch (batch mode)
};

}  // namespace numaio::sim
