// Discrete-event simulation core: a clock plus a time-ordered event queue.
//
// Events scheduled for the same timestamp fire in scheduling order
// (FIFO tie-break via a monotone sequence number), which keeps runs
// deterministic regardless of container internals.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "simcore/units.h"

namespace numaio::sim {

class EventEngine {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  Ns now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= now()).
  void schedule_at(Ns at, Callback fn);

  /// Schedules `fn` to run `delay` nanoseconds from now.
  void schedule_in(Ns delay, Callback fn);

  /// Runs events until the queue drains. Returns the final clock value.
  Ns run();

  /// Runs events with timestamp <= `until`, then advances the clock to
  /// `until` if it has not passed it. Returns the final clock value.
  Ns run_until(Ns until);

  /// Pending event count (for tests and loop guards).
  std::size_t pending() const { return heap_.size(); }

  /// Time of the earliest pending event; kUnlimited when empty.
  Ns next_event_time() const;

 private:
  struct Event {
    Ns at;
    std::uint64_t seq;
    Callback fn;
  };

  void pop_and_run();

  Ns now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  // Min-heap on (at, seq), managed with std::push_heap/std::pop_heap so
  // events (which hold move-only state) can be moved out when fired.
  std::vector<Event> heap_;
};

}  // namespace numaio::sim
