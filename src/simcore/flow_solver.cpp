#include "simcore/flow_solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

namespace numaio::sim {

ResourceId FlowSolver::add_resource(std::string name, Gbps capacity) {
  assert(capacity >= 0.0);
  resources_.push_back(Resource{std::move(name), capacity});
  return resources_.size() - 1;
}

void FlowSolver::set_capacity(ResourceId id, Gbps capacity) {
  assert(id < resources_.size());
  assert(capacity >= 0.0);
  resources_[id].capacity = capacity;
}

Gbps FlowSolver::capacity(ResourceId id) const {
  assert(id < resources_.size());
  return resources_[id].capacity;
}

const std::string& FlowSolver::resource_name(ResourceId id) const {
  assert(id < resources_.size());
  return resources_[id].name;
}

FlowId FlowSolver::add_flow(std::vector<Usage> usages, Gbps rate_cap) {
  for (const Usage& u : usages) {
    assert(u.resource < resources_.size());
    assert(u.weight > 0.0);
    (void)u;
  }
  assert(rate_cap >= 0.0);
  flows_.push_back(Flow{std::move(usages), rate_cap, true});
  ++live_flows_;
  return flows_.size() - 1;
}

FlowId FlowSolver::add_flow_over(const std::vector<ResourceId>& path,
                                 Gbps rate_cap) {
  std::vector<Usage> usages;
  usages.reserve(path.size());
  for (ResourceId r : path) usages.push_back(Usage{r, 1.0});
  return add_flow(std::move(usages), rate_cap);
}

void FlowSolver::remove_flow(FlowId id) {
  assert(id < flows_.size());
  assert(flows_[id].alive);
  flows_[id].alive = false;
  --live_flows_;
}

void FlowSolver::set_flow_cap(FlowId id, Gbps rate_cap) {
  assert(id < flows_.size());
  assert(rate_cap >= 0.0);
  flows_[id].cap = rate_cap;
}

Gbps FlowSolver::flow_cap(FlowId id) const {
  assert(id < flows_.size());
  return flows_[id].cap;
}

bool FlowSolver::flow_alive(FlowId id) const {
  assert(id < flows_.size());
  return flows_[id].alive;
}

void FlowSolver::set_observer(obs::Context* obs) {
  obs_ = obs;
  if (obs_ == nullptr) return;
  m_solves_ = obs_->metrics.counter("solver.solves");
  m_iterations_ = obs_->metrics.counter("solver.iterations");
  m_iters_hist_ = obs_->metrics.histogram(
      "solver.iterations_per_solve", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  m_solve_us_ = obs_->metrics.histogram(
      "solver.solve_us", {1.0, 10.0, 100.0, 1000.0, 10000.0});
}

std::vector<Gbps> FlowSolver::solve() const {
  obs::ScopedTimer timer(obs_ != nullptr ? &obs_->metrics : nullptr,
                         m_solve_us_);
  std::vector<Gbps> rate(flows_.size(), 0.0);
  if (live_flows_ == 0) return rate;

  // Weights accumulate and are later subtracted flow by flow; treat
  // anything below this as zero so floating-point residue from frozen
  // flows cannot resurrect a saturated resource with a bogus
  // residual/weight ratio.
  constexpr double kWeightEps = 1e-9;

  std::vector<bool> frozen(flows_.size(), true);
  for (FlowId f = 0; f < flows_.size(); ++f) frozen[f] = !flows_[f].alive;

  // residual[r]: capacity left on resource r; weight[r]: total usage weight
  // of unfrozen flows on r.
  std::vector<Gbps> residual(resources_.size());
  for (ResourceId r = 0; r < resources_.size(); ++r) {
    residual[r] = resources_[r].capacity;
  }
  std::vector<double> weight(resources_.size(), 0.0);
  for (FlowId f = 0; f < flows_.size(); ++f) {
    if (frozen[f]) continue;
    for (const Usage& u : flows_[f].usages) weight[u.resource] += u.weight;
  }

  std::size_t unfrozen = live_flows_;
  std::uint64_t rounds = 0;
  while (unfrozen > 0) {
    ++rounds;
    // Largest uniform rate increment delta all unfrozen flows can take.
    double delta = std::numeric_limits<double>::infinity();
    for (ResourceId r = 0; r < resources_.size(); ++r) {
      if (weight[r] > kWeightEps && std::isfinite(residual[r])) {
        delta = std::min(delta, std::max(residual[r], 0.0) / weight[r]);
      }
    }
    for (FlowId f = 0; f < flows_.size(); ++f) {
      if (!frozen[f] && std::isfinite(flows_[f].cap)) {
        delta = std::min(delta, flows_[f].cap - rate[f]);
      }
    }
    assert(std::isfinite(delta) &&
           "every flow needs a finite cap or a finite resource in its usages");
    delta = std::max(delta, 0.0);

    for (FlowId f = 0; f < flows_.size(); ++f) {
      if (frozen[f]) continue;
      rate[f] += delta;
      for (const Usage& u : flows_[f].usages) {
        residual[u.resource] -= delta * u.weight;
      }
    }

    // Freeze flows that hit their own cap, then flows crossing any
    // saturated resource.
    constexpr double kEps = 1e-12;
    std::vector<bool> saturated(resources_.size(), false);
    for (ResourceId r = 0; r < resources_.size(); ++r) {
      if (weight[r] > kWeightEps && std::isfinite(residual[r]) &&
          residual[r] <= kEps * std::max(1.0, resources_[r].capacity)) {
        saturated[r] = true;
      }
    }
    bool any_frozen_this_round = false;
    for (FlowId f = 0; f < flows_.size(); ++f) {
      if (frozen[f]) continue;
      bool freeze =
          std::isfinite(flows_[f].cap) && rate[f] >= flows_[f].cap - kEps;
      if (!freeze) {
        for (const Usage& u : flows_[f].usages) {
          if (saturated[u.resource]) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        frozen[f] = true;
        --unfrozen;
        any_frozen_this_round = true;
        for (const Usage& u : flows_[f].usages) {
          weight[u.resource] -= u.weight;
          if (weight[u.resource] < kWeightEps) weight[u.resource] = 0.0;
        }
      }
    }
    // Progress guarantee: a positive delta saturates something; a zero
    // delta means a cap/resource was already tight and those flows froze.
    if (!any_frozen_this_round) {
      assert(false && "flow solver failed to make progress");
      break;
    }
  }
  if (obs_ != nullptr) {
    obs_->metrics.add(m_solves_);
    obs_->metrics.add(m_iterations_, static_cast<double>(rounds));
    obs_->metrics.observe(m_iters_hist_, static_cast<double>(rounds));
  }
  return rate;
}

Gbps FlowSolver::aggregate_rate() const {
  const auto rates = solve();
  Gbps sum = 0.0;
  for (FlowId f = 0; f < flows_.size(); ++f) {
    if (flows_[f].alive) sum += rates[f];
  }
  return sum;
}

double FlowSolver::utilization(ResourceId id) const {
  assert(id < resources_.size());
  if (!std::isfinite(resources_[id].capacity) ||
      resources_[id].capacity <= 0.0) {
    return 0.0;
  }
  const auto rates = solve();
  double used = 0.0;
  for (FlowId f = 0; f < flows_.size(); ++f) {
    if (!flows_[f].alive) continue;
    for (const Usage& u : flows_[f].usages) {
      if (u.resource == id) used += rates[f] * u.weight;
    }
  }
  return used / resources_[id].capacity;
}

}  // namespace numaio::sim
