#include "simcore/flow_solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

namespace numaio::sim {

namespace {
// Weights accumulate and are later subtracted flow by flow; treat
// anything below this as zero so floating-point residue from frozen
// flows cannot resurrect a saturated resource with a bogus
// residual/weight ratio.
constexpr double kWeightEps = 1e-9;
constexpr double kEps = 1e-12;
}  // namespace

void FlowSolver::bump_epoch() {
  ++epoch_;
  cache_valid_ = false;
}

void FlowSolver::refresh_capacity(Resource& r) {
  // factor == 1.0 bypasses the multiply so an unscaled resource's
  // effective capacity is bit-identical to its base.
  const Gbps eff = (r.factor == 1.0) ? r.base : r.base * r.factor;
  if (eff != r.capacity) {
    r.capacity = eff;
    bump_epoch();
  }
}

template <class T>
void FlowSolver::ensure_size(std::vector<T>& v, std::size_t n) const {
  if (v.capacity() < n) ++stats_.scratch_grows;
  v.resize(n);
}

ResourceId FlowSolver::add_resource(std::string name, Gbps capacity) {
  assert(capacity >= 0.0);
  resources_.push_back(Resource{std::move(name), capacity, 1.0, capacity});
  incidence_.emplace_back();
  bump_epoch();
  return resources_.size() - 1;
}

void FlowSolver::set_capacity(ResourceId id, Gbps capacity) {
  assert(id < resources_.size());
  assert(capacity >= 0.0);
  resources_[id].base = capacity;
  refresh_capacity(resources_[id]);
}

void FlowSolver::set_capacity_factor(ResourceId id, double factor) {
  assert(id < resources_.size());
  assert(std::isfinite(factor) && factor > 0.0);
  resources_[id].factor = factor;
  refresh_capacity(resources_[id]);
}

double FlowSolver::capacity_factor(ResourceId id) const {
  assert(id < resources_.size());
  return resources_[id].factor;
}

Gbps FlowSolver::capacity(ResourceId id) const {
  assert(id < resources_.size());
  return resources_[id].capacity;
}

const std::string& FlowSolver::resource_name(ResourceId id) const {
  assert(id < resources_.size());
  return resources_[id].name;
}

FlowId FlowSolver::add_flow(std::vector<Usage> usages, Gbps rate_cap) {
  for (const Usage& u : usages) {
    assert(u.resource < resources_.size());
    assert(u.weight > 0.0);
    (void)u;
  }
  assert(rate_cap >= 0.0);
  const std::size_t n = usages.size();

  // Prefer a free slot whose arena span already fits; newest first so a
  // remove/add churn pair reuses hot cache lines.
  FlowId slot = kNoFlow;
  for (std::size_t k = free_slots_.size(); k-- > 0;) {
    if (flows_[free_slots_[k]].span >= n) {
      slot = free_slots_[k];
      free_slots_[k] = free_slots_.back();
      free_slots_.pop_back();
      break;
    }
  }
  if (slot == kNoFlow && !free_slots_.empty()) {
    // Recycle the slot header but give it a fresh, wider arena span; the
    // old span's cells are abandoned (bounded by flow-size growth, which
    // real workloads don't do in steady state).
    slot = free_slots_.back();
    free_slots_.pop_back();
    flows_[slot].begin = usage_resource_.size();
    flows_[slot].span = n;
    usage_resource_.resize(usage_resource_.size() + n);
    usage_weight_.resize(usage_weight_.size() + n);
    usage_inc_pos_.resize(usage_inc_pos_.size() + n);
  }
  if (slot == kNoFlow) {
    slot = flows_.size();
    FlowMeta fresh;
    fresh.begin = usage_resource_.size();
    fresh.span = n;
    flows_.push_back(fresh);
    usage_resource_.resize(usage_resource_.size() + n);
    usage_weight_.resize(usage_weight_.size() + n);
    usage_inc_pos_.resize(usage_inc_pos_.size() + n);
  }

  FlowMeta& m = flows_[slot];
  m.count = n;
  m.cap = rate_cap;
  m.alive = true;
  m.prev = tail_;
  m.next = kNoFlow;
  if (tail_ != kNoFlow) {
    flows_[tail_].next = slot;
  } else {
    head_ = slot;
  }
  tail_ = slot;

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = m.begin + i;
    const ResourceId r = usages[i].resource;
    usage_resource_[idx] = r;
    usage_weight_[idx] = usages[i].weight;
    usage_inc_pos_[idx] = incidence_[r].size();
    incidence_[r].push_back(IncidenceEntry{slot, idx});
  }

  ++live_flows_;
  bump_epoch();
  return slot;
}

FlowId FlowSolver::add_flow_over(const std::vector<ResourceId>& path,
                                 Gbps rate_cap) {
  std::vector<Usage> usages;
  usages.reserve(path.size());
  for (ResourceId r : path) usages.push_back(Usage{r, 1.0});
  return add_flow(std::move(usages), rate_cap);
}

void FlowSolver::remove_flow(FlowId id) {
  assert(id < flows_.size());
  FlowMeta& m = flows_[id];
  assert(m.alive);

  // Drop this flow's incidence entries; the back entry swapped into the
  // hole has its arena cell's position pointer fixed up.
  for (std::size_t i = m.begin; i < m.begin + m.count; ++i) {
    std::vector<IncidenceEntry>& inc = incidence_[usage_resource_[i]];
    const std::size_t pos = usage_inc_pos_[i];
    assert(pos < inc.size() && inc[pos].flow == id && inc[pos].usage == i);
    inc[pos] = inc.back();
    usage_inc_pos_[inc[pos].usage] = pos;
    inc.pop_back();
  }

  m.alive = false;
  if (m.prev != kNoFlow) {
    flows_[m.prev].next = m.next;
  } else {
    head_ = m.next;
  }
  if (m.next != kNoFlow) {
    flows_[m.next].prev = m.prev;
  } else {
    tail_ = m.prev;
  }
  m.prev = kNoFlow;
  m.next = kNoFlow;

  free_slots_.push_back(id);
  assert(live_flows_ > 0);
  --live_flows_;
  assert(live_flows_ + free_slots_.size() == flows_.size());
  bump_epoch();
}

void FlowSolver::set_flow_cap(FlowId id, Gbps rate_cap) {
  assert(id < flows_.size());
  assert(flows_[id].alive);
  assert(rate_cap >= 0.0);
  if (flows_[id].cap != rate_cap) {
    flows_[id].cap = rate_cap;
    bump_epoch();
  }
}

Gbps FlowSolver::flow_cap(FlowId id) const {
  assert(id < flows_.size());
  return flows_[id].cap;
}

bool FlowSolver::flow_alive(FlowId id) const {
  assert(id < flows_.size());
  return flows_[id].alive;
}

void FlowSolver::set_observer(obs::Context* obs) {
  obs_ = obs;
  if (obs_ == nullptr) return;
  m_solves_ = obs_->metrics.counter("solver.solves");
  m_rounds_ = obs_->metrics.counter("solver.rounds");
  m_rounds_hist_ = obs_->metrics.histogram(
      "solver.rounds_per_solve", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  m_solve_us_ = obs_->metrics.histogram(
      "solver.solve_us", {1.0, 10.0, 100.0, 1000.0, 10000.0});
  m_cache_hits_ = obs_->metrics.counter("solver.cache_hits");
  m_cache_misses_ = obs_->metrics.counter("solver.cache_misses");
  m_flows_scanned_ = obs_->metrics.counter("solver.flows_scanned");
  m_touches_ = obs_->metrics.counter("solver.resource_touches");
}

const std::vector<Gbps>& FlowSolver::solve() const {
  ++stats_.solve_calls;
  if (obs_ != nullptr) obs_->metrics.add(m_solves_);
  if (cache_valid_ && cached_epoch_ == epoch_) {
    ++stats_.cache_hits;
    if (obs_ != nullptr) obs_->metrics.add(m_cache_hits_);
    return rates_;
  }
  ++stats_.cache_misses;
  if (obs_ != nullptr) obs_->metrics.add(m_cache_misses_);
  solve_uncached();
  cache_valid_ = true;
  cached_epoch_ = epoch_;
  return rates_;
}

void FlowSolver::solve_uncached() const {
  obs::ScopedTimer timer(obs_ != nullptr ? &obs_->metrics : nullptr,
                         m_solve_us_);
#ifndef NDEBUG
  {
    // Live-flow accounting: the insertion-order list, the live counter
    // and the free-list must agree before every real solve.
    std::size_t walked = 0;
    for (FlowId f = head_; f != kNoFlow; f = flows_[f].next) {
      assert(flows_[f].alive);
      ++walked;
    }
    assert(walked == live_flows_);
    assert(live_flows_ + free_slots_.size() == flows_.size());
  }
#endif

  ensure_size(rates_, flows_.size());
  std::fill(rates_.begin(), rates_.end(), 0.0);
  if (live_flows_ == 0) return;

  ensure_size(weight_, resources_.size());
  ensure_size(residual_, resources_.size());
  ensure_size(touch_stamp_, resources_.size());
  ensure_size(cand_stamp_, flows_.size());
  if (worklist_.capacity() < live_flows_) {
    ++stats_.scratch_grows;
    worklist_.reserve(live_flows_);
  }
  if (touched_.capacity() < resources_.size()) {
    ++stats_.scratch_grows;
    touched_.reserve(resources_.size());
  }

  // Build the worklist (insertion order == the old ascending-id order)
  // and accumulate per-resource weights in the same order the old solver
  // did, collecting the touched-resource set on the way. weight_ and
  // residual_ are initialized lazily at first touch via the stamp, so an
  // untouched resource costs nothing.
  const std::uint64_t touch_token = ++stamp_;
  worklist_.clear();
  touched_.clear();
  for (FlowId f = head_; f != kNoFlow; f = flows_[f].next) {
    worklist_.push_back(f);
    const FlowMeta& m = flows_[f];
    for (std::size_t i = m.begin; i < m.begin + m.count; ++i) {
      const ResourceId r = usage_resource_[i];
      if (touch_stamp_[r] != touch_token) {
        touch_stamp_[r] = touch_token;
        weight_[r] = 0.0;
        residual_[r] = resources_[r].capacity;
        touched_.push_back(r);
      }
      weight_[r] += usage_weight_[i];
    }
  }

  std::size_t unfrozen = worklist_.size();
  std::uint64_t rounds = 0;
  std::uint64_t scanned = 0;
  std::uint64_t touches = 0;
  while (unfrozen > 0) {
    ++rounds;
    // Largest uniform rate increment delta all unfrozen flows can take.
    // min() over the touched set only: every other resource has exactly
    // zero weight, so the old full-resource scan excluded it too.
    double delta = std::numeric_limits<double>::infinity();
    for (ResourceId r : touched_) {
      if (weight_[r] > kWeightEps && std::isfinite(residual_[r])) {
        delta = std::min(delta, std::max(residual_[r], 0.0) / weight_[r]);
      }
    }
    for (std::size_t k = 0; k < unfrozen; ++k) {
      const FlowId f = worklist_[k];
      if (std::isfinite(flows_[f].cap)) {
        delta = std::min(delta, flows_[f].cap - rates_[f]);
      }
    }
    assert(std::isfinite(delta) &&
           "every flow needs a finite cap or a finite resource in its usages");
    delta = std::max(delta, 0.0);

    for (std::size_t k = 0; k < unfrozen; ++k) {
      const FlowId f = worklist_[k];
      const FlowMeta& m = flows_[f];
      rates_[f] += delta;
      for (std::size_t i = m.begin; i < m.begin + m.count; ++i) {
        residual_[usage_resource_[i]] -= delta * usage_weight_[i];
      }
      touches += m.count;
    }
    scanned += unfrozen;

    // Saturation pass: instead of materializing a saturated[] bitmap and
    // rescanning every unfrozen flow's usages, mark the flows incident
    // to each saturated resource as freeze candidates (the incidence
    // list is exactly the set of flows the old scan would have matched).
    const std::uint64_t round_token = ++stamp_;
    for (ResourceId r : touched_) {
      if (weight_[r] > kWeightEps && std::isfinite(residual_[r]) &&
          residual_[r] <= kEps * std::max(1.0, resources_[r].capacity)) {
        for (const IncidenceEntry& e : incidence_[r]) {
          cand_stamp_[e.flow] = round_token;
        }
      }
    }

    // Freeze pass, compacting the worklist in place. Processing stays in
    // insertion order so the weight-release subtractions happen in the
    // same floating-point order as the old per-id scan.
    std::size_t out = 0;
    bool any_frozen_this_round = false;
    for (std::size_t k = 0; k < unfrozen; ++k) {
      const FlowId f = worklist_[k];
      const FlowMeta& m = flows_[f];
      const bool freeze =
          (std::isfinite(m.cap) && rates_[f] >= m.cap - kEps) ||
          cand_stamp_[f] == round_token;
      if (freeze) {
        any_frozen_this_round = true;
        for (std::size_t i = m.begin; i < m.begin + m.count; ++i) {
          const ResourceId r = usage_resource_[i];
          weight_[r] -= usage_weight_[i];
          if (weight_[r] < kWeightEps) weight_[r] = 0.0;
        }
      } else {
        worklist_[out++] = f;
      }
    }
    // Progress guarantee: a positive delta saturates something; a zero
    // delta means a cap/resource was already tight and those flows froze.
    if (!any_frozen_this_round) {
      assert(false && "flow solver failed to make progress");
      break;
    }
    unfrozen = out;
  }

  stats_.rounds += rounds;
  stats_.flows_scanned += scanned;
  stats_.resource_touches += touches;
  if (obs_ != nullptr) {
    obs_->metrics.add(m_rounds_, static_cast<double>(rounds));
    obs_->metrics.observe(m_rounds_hist_, static_cast<double>(rounds));
    obs_->metrics.add(m_flows_scanned_, static_cast<double>(scanned));
    obs_->metrics.add(m_touches_, static_cast<double>(touches));
  }
}

Gbps FlowSolver::aggregate_rate() const {
  const std::vector<Gbps>& rates = solve();
  Gbps sum = 0.0;
  for (FlowId f = head_; f != kNoFlow; f = flows_[f].next) sum += rates[f];
  return sum;
}

double FlowSolver::utilization(ResourceId id) const {
  assert(id < resources_.size());
  const Resource& res = resources_[id];
  if (!std::isfinite(res.capacity) || res.capacity <= 0.0) {
    return 0.0;
  }
  const std::vector<Gbps>& rates = solve();
  // Walks flow usage spans in insertion order (not the unordered
  // incidence list) so the sum accumulates in the historical order.
  double used = 0.0;
  for (FlowId f = head_; f != kNoFlow; f = flows_[f].next) {
    const FlowMeta& m = flows_[f];
    for (std::size_t i = m.begin; i < m.begin + m.count; ++i) {
      if (usage_resource_[i] == id) used += rates[f] * usage_weight_[i];
    }
  }
  return used / res.capacity;
}

}  // namespace numaio::sim
