#include "simcore/flow_solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "simcore/thread_pool.h"

namespace numaio::sim {

namespace {
// Weights accumulate and are later subtracted flow by flow; treat
// anything below this as zero so floating-point residue from frozen
// flows cannot resurrect a saturated resource with a bogus
// residual/weight ratio.
constexpr double kWeightEps = 1e-9;
constexpr double kEps = 1e-12;
// Removal churn tolerated before solve() re-derives components from the
// live flows: union-find can only merge, so without periodic rebuilds a
// long-lived solver would congeal into one stale mega-component and the
// partitioning would stop paying for itself.
constexpr std::size_t kRebuildMinRemovals = 16;
}  // namespace

/// Per-worker water-filling scratch. alignas(64) puts each worker's hot
/// cursors (stamp, partial counters, the vector headers) on its own cache
/// line; the vectors' payloads are separate heap blocks already, so two
/// workers solving components concurrently never write the same line.
struct alignas(64) FlowSolver::SolveScratch {
  std::vector<FlowId> worklist;     ///< Monolithic-mode flow list.
  std::vector<ResourceId> touched;  ///< Resources with live weight.
  std::vector<double> weight;
  std::vector<Gbps> residual;
  std::vector<std::uint64_t> touch_stamp;  ///< Per resource.
  std::vector<std::uint64_t> cand_stamp;   ///< Per flow slot.
  std::uint64_t stamp = 0;
  // Per-solve partial counters, summed into stats_ after the join so
  // workers never contend on the shared SolveStats block.
  std::uint64_t rounds = 0;
  std::uint64_t flows_scanned = 0;
  std::uint64_t resource_touches = 0;
  std::uint64_t scratch_grows = 0;
};

FlowSolver::FlowSolver(const SolveOptions& options)
    : options_(options.normalized()) {
  scratch_.reserve(static_cast<std::size_t>(options_.threads));
  for (int w = 0; w < options_.threads; ++w) {
    scratch_.push_back(std::make_unique<SolveScratch>());
  }
}

FlowSolver::~FlowSolver() = default;
FlowSolver::FlowSolver(FlowSolver&&) noexcept = default;
FlowSolver& FlowSolver::operator=(FlowSolver&&) noexcept = default;

void FlowSolver::set_options(const SolveOptions& options) {
  const SolveOptions next = options.normalized();
  if (next == options_) return;
  const bool was_partition = options_.partition;
  options_ = next;
  pool_.reset();  // lazily recreated at the new width
  while (scratch_.size() < static_cast<std::size_t>(options_.threads)) {
    scratch_.push_back(std::make_unique<SolveScratch>());
  }
  if (options_.partition && !was_partition) {
    // Components were not maintained while partitioning was off; derive
    // them from the live flows at the next solve.
    dsu_parent_.resize(resources_.size());
    dsu_size_.resize(resources_.size());
    comp_dirty_.assign(resources_.size(), 0);
    dirty_roots_.clear();
    need_rebuild_ = true;
  }
  // A partition toggle changes the floating-point association of the
  // result, and any real change retires the current execution plan, so
  // the cached rates cannot be reused.
  bump_epoch();
  all_dirty_ = true;
  detached_dirty_ = true;
}

void FlowSolver::bump_epoch() {
  ++epoch_;
  cache_valid_ = false;
}

void FlowSolver::refresh_capacity(ResourceId id) {
  Resource& r = resources_[id];
  // factor == 1.0 bypasses the multiply so an unscaled resource's
  // effective capacity is bit-identical to its base.
  const Gbps eff = (r.factor == 1.0) ? r.base : r.base * r.factor;
  if (eff != r.capacity) {
    r.capacity = eff;
    bump_epoch();
    if (options_.partition) mark_dirty(find_root(id));
  }
}

template <class T>
void FlowSolver::ensure_size(std::vector<T>& v, std::size_t n,
                             std::uint64_t& grows) {
  if (v.capacity() < n) ++grows;
  v.resize(n);
}

ResourceId FlowSolver::find_root(ResourceId r) const {
  while (dsu_parent_[r] != r) {
    dsu_parent_[r] = dsu_parent_[dsu_parent_[r]];  // path halving
    r = dsu_parent_[r];
  }
  return r;
}

ResourceId FlowSolver::unite(ResourceId a, ResourceId b) const {
  a = find_root(a);
  b = find_root(b);
  if (a == b) return a;
  // Size-major, lowest-id-minor tie break: the surviving root is a pure
  // function of the union sequence, never of memory layout.
  if (dsu_size_[a] < dsu_size_[b] ||
      (dsu_size_[a] == dsu_size_[b] && b < a)) {
    std::swap(a, b);
  }
  dsu_parent_[b] = a;
  dsu_size_[a] += dsu_size_[b];
  // A dirty mark on the absorbed root must survive on the merged root.
  if (comp_dirty_[b] != 0) mark_dirty(a);
  return a;
}

void FlowSolver::mark_dirty(ResourceId root) const {
  if (comp_dirty_[root] == 0) {
    comp_dirty_[root] = 1;
    dirty_roots_.push_back(root);
  }
}

void FlowSolver::rebuild_components() const {
  for (ResourceId r = 0; r < resources_.size(); ++r) {
    dsu_parent_[r] = r;
    dsu_size_[r] = 1;
  }
  for (ResourceId r : dirty_roots_) comp_dirty_[r] = 0;
  dirty_roots_.clear();
  for (FlowId f = head_; f != kNoFlow; f = flows_[f].next) {
    const FlowMeta& m = flows_[f];
    for (std::size_t i = m.begin + 1; i < m.begin + m.count; ++i) {
      unite(usage_resource_[m.begin], usage_resource_[i]);
    }
  }
  removed_since_rebuild_ = 0;
  need_rebuild_ = false;
  all_dirty_ = true;
  detached_dirty_ = true;
  ++stats_.component_rebuilds;
  if (obs_ != nullptr) obs_->metrics.add(m_rebuilds_);
}

ResourceId FlowSolver::add_resource(std::string name, Gbps capacity) {
  assert(capacity >= 0.0);
  resources_.push_back(Resource{std::move(name), capacity, 1.0, capacity});
  incidence_.emplace_back();
  if (options_.partition) {
    dsu_parent_.push_back(resources_.size() - 1);
    dsu_size_.push_back(1);
    comp_dirty_.push_back(0);
  }
  bump_epoch();
  return resources_.size() - 1;
}

void FlowSolver::set_capacity(ResourceId id, Gbps capacity) {
  assert(id < resources_.size());
  assert(capacity >= 0.0);
  resources_[id].base = capacity;
  refresh_capacity(id);
}

void FlowSolver::set_capacity_factor(ResourceId id, double factor) {
  assert(id < resources_.size());
  assert(std::isfinite(factor) && factor > 0.0);
  resources_[id].factor = factor;
  refresh_capacity(id);
}

double FlowSolver::capacity_factor(ResourceId id) const {
  assert(id < resources_.size());
  return resources_[id].factor;
}

Gbps FlowSolver::capacity(ResourceId id) const {
  assert(id < resources_.size());
  return resources_[id].capacity;
}

const std::string& FlowSolver::resource_name(ResourceId id) const {
  assert(id < resources_.size());
  return resources_[id].name;
}

FlowId FlowSolver::add_flow(std::vector<Usage> usages, Gbps rate_cap) {
  for (const Usage& u : usages) {
    assert(u.resource < resources_.size());
    assert(u.weight > 0.0);
    (void)u;
  }
  assert(rate_cap >= 0.0);
  const std::size_t n = usages.size();

  // Prefer a free slot whose arena span already fits; newest first so a
  // remove/add churn pair reuses hot cache lines.
  FlowId slot = kNoFlow;
  for (std::size_t k = free_slots_.size(); k-- > 0;) {
    if (flows_[free_slots_[k]].span >= n) {
      slot = free_slots_[k];
      free_slots_[k] = free_slots_.back();
      free_slots_.pop_back();
      break;
    }
  }
  if (slot == kNoFlow && !free_slots_.empty()) {
    // Recycle the slot header but give it a fresh, wider arena span; the
    // old span's cells are abandoned (bounded by flow-size growth, which
    // real workloads don't do in steady state).
    slot = free_slots_.back();
    free_slots_.pop_back();
    flows_[slot].begin = usage_resource_.size();
    flows_[slot].span = n;
    usage_resource_.resize(usage_resource_.size() + n);
    usage_weight_.resize(usage_weight_.size() + n);
    usage_inc_pos_.resize(usage_inc_pos_.size() + n);
  }
  if (slot == kNoFlow) {
    slot = flows_.size();
    FlowMeta fresh;
    fresh.begin = usage_resource_.size();
    fresh.span = n;
    flows_.push_back(fresh);
    usage_resource_.resize(usage_resource_.size() + n);
    usage_weight_.resize(usage_weight_.size() + n);
    usage_inc_pos_.resize(usage_inc_pos_.size() + n);
  }

  FlowMeta& m = flows_[slot];
  m.count = n;
  m.cap = rate_cap;
  m.alive = true;
  m.prev = tail_;
  m.next = kNoFlow;
  if (tail_ != kNoFlow) {
    flows_[tail_].next = slot;
  } else {
    head_ = slot;
  }
  tail_ = slot;

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = m.begin + i;
    const ResourceId r = usages[i].resource;
    usage_resource_[idx] = r;
    usage_weight_[idx] = usages[i].weight;
    usage_inc_pos_[idx] = incidence_[r].size();
    incidence_[r].push_back(IncidenceEntry{slot, idx});
  }

  if (options_.partition) {
    if (n == 0) {
      detached_dirty_ = true;
    } else {
      // Union the flow's resources into one component and dirty it: the
      // new flow changes every rate in the (merged) component.
      ResourceId root = find_root(usage_resource_[m.begin]);
      for (std::size_t i = 1; i < n; ++i) {
        root = unite(root, usage_resource_[m.begin + i]);
      }
      mark_dirty(root);
    }
  }

  ++live_flows_;
  bump_epoch();
  return slot;
}

FlowId FlowSolver::add_flow_over(const std::vector<ResourceId>& path,
                                 Gbps rate_cap) {
  std::vector<Usage> usages;
  usages.reserve(path.size());
  for (ResourceId r : path) usages.push_back(Usage{r, 1.0});
  return add_flow(std::move(usages), rate_cap);
}

Status FlowSolver::remove_flow(FlowId id) {
  if (id >= flows_.size() || !flows_[id].alive) {
    return Status{StatusCode::kUsage,
                  "remove_flow: no live flow #" + std::to_string(id)};
  }
  remove_flow_impl(id);
  bump_epoch();
  return Status{};
}

std::size_t FlowSolver::remove_flows(std::span<const FlowId> ids) {
  std::size_t removed = 0;
  for (const FlowId id : ids) {
    if (id >= flows_.size() || !flows_[id].alive) continue;
    remove_flow_impl(id);
    ++removed;
  }
  if (removed > 0) bump_epoch();
  return removed;
}

void FlowSolver::remove_flow_impl(FlowId id) {
  FlowMeta& m = flows_[id];
  if (options_.partition) {
    if (m.count > 0) {
      mark_dirty(find_root(usage_resource_[m.begin]));
    } else {
      detached_dirty_ = true;
    }
    // The union-find cannot split; count removals so solve() knows when
    // the component map is stale enough to rebuild.
    ++removed_since_rebuild_;
  }

  // Drop this flow's incidence entries; the back entry swapped into the
  // hole has its arena cell's position pointer fixed up.
  for (std::size_t i = m.begin; i < m.begin + m.count; ++i) {
    std::vector<IncidenceEntry>& inc = incidence_[usage_resource_[i]];
    const std::size_t pos = usage_inc_pos_[i];
    assert(pos < inc.size() && inc[pos].flow == id && inc[pos].usage == i);
    inc[pos] = inc.back();
    usage_inc_pos_[inc[pos].usage] = pos;
    inc.pop_back();
  }

  m.alive = false;
  if (m.prev != kNoFlow) {
    flows_[m.prev].next = m.next;
  } else {
    head_ = m.next;
  }
  if (m.next != kNoFlow) {
    flows_[m.next].prev = m.prev;
  } else {
    tail_ = m.prev;
  }
  m.prev = kNoFlow;
  m.next = kNoFlow;

  free_slots_.push_back(id);
  assert(live_flows_ > 0);
  --live_flows_;
  assert(live_flows_ + free_slots_.size() == flows_.size());
}

Status FlowSolver::set_flow_cap(FlowId id, Gbps rate_cap) {
  if (id >= flows_.size() || !flows_[id].alive) {
    return Status{StatusCode::kUsage,
                  "set_flow_cap: no live flow #" + std::to_string(id)};
  }
  assert(rate_cap >= 0.0);
  if (flows_[id].cap != rate_cap) {
    flows_[id].cap = rate_cap;
    if (options_.partition) {
      const FlowMeta& m = flows_[id];
      if (m.count > 0) {
        mark_dirty(find_root(usage_resource_[m.begin]));
      } else {
        detached_dirty_ = true;
      }
    }
    bump_epoch();
  }
  return Status{};
}

Gbps FlowSolver::flow_cap(FlowId id) const {
  assert(id < flows_.size());
  return flows_[id].cap;
}

bool FlowSolver::flow_alive(FlowId id) const {
  assert(id < flows_.size());
  return flows_[id].alive;
}

void FlowSolver::set_observer(obs::Context* obs) {
  obs_ = obs;
  if (obs_ == nullptr) return;
  m_solves_ = obs_->metrics.counter("solver.solves");
  m_rounds_ = obs_->metrics.counter("solver.rounds");
  m_rounds_hist_ = obs_->metrics.histogram(
      "solver.rounds_per_solve", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  m_solve_us_ = obs_->metrics.histogram(
      "solver.solve_us", {1.0, 10.0, 100.0, 1000.0, 10000.0});
  m_cache_hits_ = obs_->metrics.counter("solver.cache_hits");
  m_cache_misses_ = obs_->metrics.counter("solver.cache_misses");
  m_flows_scanned_ = obs_->metrics.counter("solver.flows_scanned");
  m_touches_ = obs_->metrics.counter("solver.resource_touches");
  m_components_ = obs_->metrics.gauge("solver.components");
  m_largest_comp_ = obs_->metrics.gauge("solver.largest_component_flows");
  m_parallel_batches_ = obs_->metrics.counter("solver.parallel_batches");
  m_rebuilds_ = obs_->metrics.counter("solver.component_rebuilds");
}

const std::vector<Gbps>& FlowSolver::solve() const {
  ++stats_.solve_calls;
  if (obs_ != nullptr) obs_->metrics.add(m_solves_);
  if (cache_valid_ && cached_epoch_ == epoch_) {
    ++stats_.cache_hits;
    if (obs_ != nullptr) obs_->metrics.add(m_cache_hits_);
    return rates_;
  }
  ++stats_.cache_misses;
  if (obs_ != nullptr) obs_->metrics.add(m_cache_misses_);
  solve_uncached();
  cache_valid_ = true;
  cached_epoch_ = epoch_;
  return rates_;
}

void FlowSolver::solve_uncached() const {
  obs::ScopedTimer timer(obs_ != nullptr ? &obs_->metrics : nullptr,
                         m_solve_us_);
#ifndef NDEBUG
  {
    // Live-flow accounting: the insertion-order list, the live counter
    // and the free-list must agree before every real solve.
    std::size_t walked = 0;
    for (FlowId f = head_; f != kNoFlow; f = flows_[f].next) {
      assert(flows_[f].alive);
      ++walked;
    }
    assert(walked == live_flows_);
    assert(live_flows_ + free_slots_.size() == flows_.size());
  }
#endif

  ensure_size(rates_, flows_.size(), stats_.scratch_grows);
  if (options_.partition) {
    solve_partitioned();
    return;
  }

  std::fill(rates_.begin(), rates_.end(), 0.0);
  if (live_flows_ == 0) return;

  SolveScratch& s = *scratch_[0];
  s.rounds = 0;
  s.flows_scanned = 0;
  s.resource_touches = 0;
  s.scratch_grows = 0;
  ensure_size(s.weight, resources_.size(), s.scratch_grows);
  ensure_size(s.residual, resources_.size(), s.scratch_grows);
  ensure_size(s.touch_stamp, resources_.size(), s.scratch_grows);
  ensure_size(s.cand_stamp, flows_.size(), s.scratch_grows);
  if (s.worklist.capacity() < live_flows_) {
    ++s.scratch_grows;
    s.worklist.reserve(live_flows_);
  }
  if (s.touched.capacity() < resources_.size()) {
    ++s.scratch_grows;
    s.touched.reserve(resources_.size());
  }

  // One span holding every live flow in insertion order (== the old
  // ascending-id order): solve_span then reproduces the historical
  // floating-point operation sequence exactly.
  s.worklist.clear();
  for (FlowId f = head_; f != kNoFlow; f = flows_[f].next) {
    s.worklist.push_back(f);
  }
  solve_span(s.worklist.data(), s.worklist.size(), s);

  stats_.rounds += s.rounds;
  stats_.flows_scanned += s.flows_scanned;
  stats_.resource_touches += s.resource_touches;
  stats_.scratch_grows += s.scratch_grows;
  if (obs_ != nullptr) {
    obs_->metrics.add(m_rounds_, static_cast<double>(s.rounds));
    obs_->metrics.observe(m_rounds_hist_, static_cast<double>(s.rounds));
    obs_->metrics.add(m_flows_scanned_,
                      static_cast<double>(s.flows_scanned));
    obs_->metrics.add(m_touches_,
                      static_cast<double>(s.resource_touches));
  }
}

void FlowSolver::solve_partitioned() const {
  if (need_rebuild_ ||
      (removed_since_rebuild_ >= kRebuildMinRemovals &&
       removed_since_rebuild_ * 2 >= live_flows_)) {
    rebuild_components();
  }

  // Removed flows report 0: the monolithic path zero-fills the whole
  // vector, but here clean components keep their cached slots, so only
  // the dead slots are reset.
  for (FlowId f : free_slots_) rates_[f] = 0.0;

  if (live_flows_ == 0) {
    for (ResourceId r : dirty_roots_) comp_dirty_[r] = 0;
    dirty_roots_.clear();
    all_dirty_ = false;
    detached_dirty_ = false;
    stats_.components = 0;
    stats_.dirty_components = 0;
    stats_.largest_component_flows = 0;
    if (obs_ != nullptr) {
      obs_->metrics.set(m_components_, 0.0);
      obs_->metrics.set(m_largest_comp_, 0.0);
    }
    return;
  }

  ensure_size(comp_stamp_, resources_.size(), stats_.scratch_grows);
  ensure_size(comp_flows_, resources_.size(), stats_.scratch_grows);
  ensure_size(bucket_slot_, resources_.size(), stats_.scratch_grows);

  // Bucket pass (serial): walk live flows once in insertion order,
  // counting components and collecting the dirty ones' flows. A bucket's
  // flow order is therefore insertion order, and bucket order is the
  // first-appearance order of dirty components — both pure functions of
  // the mutation history, which is what makes the parallel solve
  // deterministic.
  const std::uint64_t tok = ++bucket_token_;
  std::size_t used = 0;  // dirty buckets this solve
  std::uint64_t components = 0;
  std::uint64_t largest = 0;
  std::size_t detached_count = 0;
  std::size_t detached_bucket = kNoBucket;
  for (FlowId f = head_; f != kNoFlow; f = flows_[f].next) {
    const FlowMeta& m = flows_[f];
    if (m.count == 0) {
      // Zero-usage flows (pure cap-limited) share one pseudo-component.
      ++detached_count;
      if (all_dirty_ || detached_dirty_) {
        if (detached_bucket == kNoBucket) {
          detached_bucket = used++;
          if (buckets_.size() < used) buckets_.emplace_back();
          buckets_[detached_bucket].flows.clear();
        }
        buckets_[detached_bucket].flows.push_back(f);
      }
      continue;
    }
    const ResourceId root = find_root(usage_resource_[m.begin]);
    if (comp_stamp_[root] != tok) {
      comp_stamp_[root] = tok;
      comp_flows_[root] = 0;
      ++components;
      if (all_dirty_ || comp_dirty_[root] != 0) {
        bucket_slot_[root] = used++;
        if (buckets_.size() < used) buckets_.emplace_back();
        buckets_[bucket_slot_[root]].flows.clear();
      } else {
        bucket_slot_[root] = kNoBucket;
      }
    }
    const std::size_t size = ++comp_flows_[root];
    if (size > largest) largest = size;
    if (bucket_slot_[root] != kNoBucket) {
      buckets_[bucket_slot_[root]].flows.push_back(f);
    }
  }
  if (detached_count > 0) ++components;

  // Size every active worker's scratch serially: the workers themselves
  // never allocate, so parallel solves stay malloc-free and the arrays
  // (one block per worker, alignas(64) headers) cannot false-share.
  const bool parallel = options_.threads > 1 && used > 1;
  const std::size_t lanes =
      parallel ? static_cast<std::size_t>(options_.threads) : 1;
  for (std::size_t w = 0; w < lanes; ++w) {
    SolveScratch& s = *scratch_[w];
    s.rounds = 0;
    s.flows_scanned = 0;
    s.resource_touches = 0;
    s.scratch_grows = 0;
    ensure_size(s.weight, resources_.size(), s.scratch_grows);
    ensure_size(s.residual, resources_.size(), s.scratch_grows);
    ensure_size(s.touch_stamp, resources_.size(), s.scratch_grows);
    ensure_size(s.cand_stamp, flows_.size(), s.scratch_grows);
    if (s.touched.capacity() < resources_.size()) {
      ++s.scratch_grows;
      s.touched.reserve(resources_.size());
    }
  }

  if (parallel) {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(options_.threads);
    }
    ++stats_.parallel_batches;
    if (obs_ != nullptr) obs_->metrics.add(m_parallel_batches_);
    Bucket* const buckets = buckets_.data();
    pool_->run(used, options_.deterministic,
               [this, buckets](std::size_t i, int worker) {
                 Bucket& b = buckets[i];
                 solve_span(b.flows.data(), b.flows.size(),
                            *scratch_[static_cast<std::size_t>(worker)]);
               });
  } else {
    for (std::size_t i = 0; i < used; ++i) {
      solve_span(buckets_[i].flows.data(), buckets_[i].flows.size(),
                 *scratch_[0]);
    }
  }

  for (ResourceId r : dirty_roots_) comp_dirty_[r] = 0;
  dirty_roots_.clear();
  all_dirty_ = false;
  detached_dirty_ = false;

  std::uint64_t rounds = 0;
  std::uint64_t scanned = 0;
  std::uint64_t touches = 0;
  std::uint64_t grows = 0;
  for (std::size_t w = 0; w < lanes; ++w) {
    const SolveScratch& s = *scratch_[w];
    rounds += s.rounds;
    scanned += s.flows_scanned;
    touches += s.resource_touches;
    grows += s.scratch_grows;
  }
  stats_.rounds += rounds;
  stats_.flows_scanned += scanned;
  stats_.resource_touches += touches;
  stats_.scratch_grows += grows;
  stats_.components = components;
  stats_.dirty_components = used;
  stats_.largest_component_flows = largest;
  if (obs_ != nullptr) {
    obs_->metrics.add(m_rounds_, static_cast<double>(rounds));
    obs_->metrics.observe(m_rounds_hist_, static_cast<double>(rounds));
    obs_->metrics.add(m_flows_scanned_, static_cast<double>(scanned));
    obs_->metrics.add(m_touches_, static_cast<double>(touches));
    obs_->metrics.set(m_components_, static_cast<double>(components));
    obs_->metrics.set(m_largest_comp_, static_cast<double>(largest));
  }
}

void FlowSolver::solve_span(FlowId* flows, std::size_t n,
                            SolveScratch& s) const {
  if (n == 0) return;

  // Build per-resource weights walking the span in order, initializing
  // weight/residual lazily at first touch via the stamp so untouched
  // resources cost nothing.
  const std::uint64_t touch_token = ++s.stamp;
  s.touched.clear();
  for (std::size_t k = 0; k < n; ++k) {
    const FlowId f = flows[k];
    rates_[f] = 0.0;
    const FlowMeta& m = flows_[f];
    for (std::size_t i = m.begin; i < m.begin + m.count; ++i) {
      const ResourceId r = usage_resource_[i];
      if (s.touch_stamp[r] != touch_token) {
        s.touch_stamp[r] = touch_token;
        s.weight[r] = 0.0;
        s.residual[r] = resources_[r].capacity;
        s.touched.push_back(r);
      }
      s.weight[r] += usage_weight_[i];
    }
  }

  std::size_t unfrozen = n;
  while (unfrozen > 0) {
    ++s.rounds;
    // Largest uniform rate increment delta all unfrozen flows can take.
    // min() over the touched set only: every other resource has exactly
    // zero weight, so the old full-resource scan excluded it too.
    double delta = std::numeric_limits<double>::infinity();
    for (ResourceId r : s.touched) {
      if (s.weight[r] > kWeightEps && std::isfinite(s.residual[r])) {
        delta =
            std::min(delta, std::max(s.residual[r], 0.0) / s.weight[r]);
      }
    }
    for (std::size_t k = 0; k < unfrozen; ++k) {
      const FlowId f = flows[k];
      if (std::isfinite(flows_[f].cap)) {
        delta = std::min(delta, flows_[f].cap - rates_[f]);
      }
    }
    assert(std::isfinite(delta) &&
           "every flow needs a finite cap or a finite resource in its usages");
    delta = std::max(delta, 0.0);

    for (std::size_t k = 0; k < unfrozen; ++k) {
      const FlowId f = flows[k];
      const FlowMeta& m = flows_[f];
      rates_[f] += delta;
      for (std::size_t i = m.begin; i < m.begin + m.count; ++i) {
        s.residual[usage_resource_[i]] -= delta * usage_weight_[i];
      }
      s.resource_touches += m.count;
    }
    s.flows_scanned += unfrozen;

    // Saturation pass: instead of materializing a saturated[] bitmap and
    // rescanning every unfrozen flow's usages, mark the flows incident
    // to each saturated resource as freeze candidates (the incidence
    // list is exactly the set of flows the old scan would have matched).
    const std::uint64_t round_token = ++s.stamp;
    for (ResourceId r : s.touched) {
      if (s.weight[r] > kWeightEps && std::isfinite(s.residual[r]) &&
          s.residual[r] <= kEps * std::max(1.0, resources_[r].capacity)) {
        for (const IncidenceEntry& e : incidence_[r]) {
          s.cand_stamp[e.flow] = round_token;
        }
      }
    }

    // Freeze pass, compacting the span in place. Processing stays in
    // insertion order so the weight-release subtractions happen in the
    // same floating-point order as the old per-id scan.
    std::size_t out = 0;
    bool any_frozen_this_round = false;
    for (std::size_t k = 0; k < unfrozen; ++k) {
      const FlowId f = flows[k];
      const FlowMeta& m = flows_[f];
      const bool freeze =
          (std::isfinite(m.cap) && rates_[f] >= m.cap - kEps) ||
          s.cand_stamp[f] == round_token;
      if (freeze) {
        any_frozen_this_round = true;
        for (std::size_t i = m.begin; i < m.begin + m.count; ++i) {
          const ResourceId r = usage_resource_[i];
          s.weight[r] -= usage_weight_[i];
          if (s.weight[r] < kWeightEps) s.weight[r] = 0.0;
        }
      } else {
        flows[out++] = f;
      }
    }
    // Progress guarantee: a positive delta saturates something; a zero
    // delta means a cap/resource was already tight and those flows froze.
    if (!any_frozen_this_round) {
      assert(false && "flow solver failed to make progress");
      break;
    }
    unfrozen = out;
  }
}

Gbps FlowSolver::aggregate_rate() const {
  const std::vector<Gbps>& rates = solve();
  Gbps sum = 0.0;
  for (FlowId f = head_; f != kNoFlow; f = flows_[f].next) sum += rates[f];
  return sum;
}

double FlowSolver::utilization(ResourceId id) const {
  assert(id < resources_.size());
  const Resource& res = resources_[id];
  if (!std::isfinite(res.capacity) || res.capacity <= 0.0) {
    return 0.0;
  }
  const std::vector<Gbps>& rates = solve();
  // Walks flow usage spans in insertion order (not the unordered
  // incidence list) so the sum accumulates in the historical order.
  double used = 0.0;
  for (FlowId f = head_; f != kNoFlow; f = flows_[f].next) {
    const FlowMeta& m = flows_[f];
    for (std::size_t i = m.begin; i < m.begin + m.count; ++i) {
      if (usage_resource_[i] == id) used += rates[f] * usage_weight_[i];
    }
  }
  return used / res.capacity;
}

}  // namespace numaio::sim
