#include "simcore/rng.h"

#include <cassert>
#include <cmath>

namespace numaio::sim {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
  // xoshiro must not start in the all-zero state; splitmix64 of any seed
  // cannot produce four zero outputs in a row, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * mul;
  have_spare_normal_ = true;
  return u * mul;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::below(std::uint64_t n) {
  assert(n > 0);
  // Debiased modulo via rejection on the top range.
  const std::uint64_t limit = n * ((~std::uint64_t{0}) / n);
  std::uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return x % n;
}

Rng Rng::fork(std::uint64_t key) const {
  std::uint64_t sm = seed_ ^ (0xA0761D6478BD642FULL + key);
  const std::uint64_t mixed = splitmix64(sm);
  return Rng(mixed);
}

Rng Rng::fork(std::uint64_t key1, std::uint64_t key2) const {
  return fork(key1).fork(key2);
}

}  // namespace numaio::sim
