// A small fixed-size fork-join pool for solver-style workloads: one
// blocking run(count, task) at a time, executed by `threads` workers of
// which the calling thread is worker 0. There is no task queue and no
// futures — the pool exists to fan a batch of independent, uniformly
// shaped work items (component solves, analysis passes) across cores
// with a deterministic item -> worker mapping when asked for one.
//
// Memory model: run() publishes the batch under a mutex and waits for
// every helper to check back in under the same mutex, so everything the
// tasks wrote happens-before run() returning (TSan-clean; exercised by
// the TSan step in ci/sanitize.sh). Tasks must not throw — an exception
// escaping a helper thread terminates the process — and must not call
// back into the pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace numaio::sim {

class ThreadPool {
 public:
  /// Task invoked as task(index, worker): `index` in [0, count) names the
  /// work item, `worker` in [0, threads) names the executing lane (e.g.
  /// to pick per-worker scratch).
  using Task = std::function<void(std::size_t index, int worker)>;

  /// Spawns threads - 1 helper threads (worker 0 is the caller of run()).
  /// `threads` is clamped to >= 1; a 1-thread pool runs everything inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// Runs task(i, worker) for every i in [0, count); returns when all
  /// invocations finished. `deterministic` pins item i to worker
  /// i mod threads (each worker walks its residue class in ascending
  /// order); otherwise workers claim items from a shared atomic counter.
  void run(std::size_t count, bool deterministic, const Task& task);

 private:
  void worker_loop(int worker);
  /// Executes worker `worker`'s share of the current batch.
  void run_share(int worker, std::size_t count, bool deterministic,
                 const Task& task);

  const int threads_;
  std::vector<std::thread> helpers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;  ///< Wakes helpers on a new batch.
  std::condition_variable done_cv_;   ///< Wakes run() when helpers finish.
  std::uint64_t generation_ = 0;      ///< Batch number; helpers latch it.
  int active_helpers_ = 0;            ///< Helpers still in this batch.
  std::size_t count_ = 0;
  bool deterministic_ = true;
  bool stop_ = false;
  const Task* task_ = nullptr;
  std::atomic<std::size_t> next_{0};  ///< Claim counter (dynamic mode).
};

}  // namespace numaio::sim
