#include "simcore/status.h"

namespace numaio {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kRuntime:
      return "runtime";
    case StatusCode::kUsage:
      return "usage";
    case StatusCode::kNoFile:
      return "no-file";
    case StatusCode::kParse:
      return "parse";
    case StatusCode::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (message.empty()) return status_code_name(code);
  return std::string(status_code_name(code)) + ": " + message;
}

StatusError::StatusError(Status status)
    : std::invalid_argument(status.to_string()), status_(std::move(status)) {}

}  // namespace numaio
