// Units and quantity helpers shared across the toolkit.
//
// Bandwidths are expressed in Gbps (1e9 bits per second) throughout, matching
// the paper's reporting unit. Latencies are in nanoseconds, sizes in bytes.
// With these choices, bits / ns == Gbps, which keeps conversions trivial.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace numaio::sim {

/// Bandwidth in gigabits per second (the paper's unit).
using Gbps = double;
/// Time in nanoseconds of simulated time.
using Ns = double;
/// Size in bytes.
using Bytes = std::uint64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// Sentinel for "no cap" in flow/rate computations.
inline constexpr Gbps kUnlimited = std::numeric_limits<double>::infinity();

/// Bandwidth of moving `bytes` in `ns` nanoseconds. `bits / ns == Gbps`.
constexpr Gbps gbps(Bytes bytes, Ns ns) {
  return static_cast<double>(bytes) * 8.0 / ns;
}

/// Time to move `bytes` at `rate` Gbps, in nanoseconds.
constexpr Ns transfer_ns(Bytes bytes, Gbps rate) {
  return static_cast<double>(bytes) * 8.0 / rate;
}

/// Bytes moved in `ns` nanoseconds at `rate` Gbps.
constexpr Bytes bytes_in(Gbps rate, Ns ns) {
  return static_cast<Bytes>(rate * ns / 8.0);
}

/// "12.34 Gbps" with two decimals; used by report tables.
std::string format_gbps(Gbps v);

/// Human-readable byte size ("128 KiB", "400 GiB", ...).
std::string format_bytes(Bytes v);

}  // namespace numaio::sim
