// Max-min-fair bandwidth allocation over a network of directed resources.
//
// A Resource is any capacity-limited element on a data path: an HT link
// direction, a node's memory controller, a PCIe link, a device engine, a
// node's CPU budget. A Flow occupies a multiset of weighted resource usages
// (weight w means the flow consumes w units of the resource per Gbps of
// flow rate — e.g. a TCP flow consumes ~1 unit of NIC bandwidth but only a
// fraction of a CPU budget per Gbps) and may carry its own rate cap (a
// DMA-window or TCP-window limit).
//
// solve() runs progressive filling: all unfrozen flows grow at the same
// rate; a flow freezes when it reaches its own cap or when a resource it
// uses saturates. This is the classical water-filling construction of the
// (weighted-usage) max-min-fair allocation and terminates after at most
// (#resources + #flows) rounds.
//
// Storage and caching (see DESIGN.md §9 for the full layout):
//  - Flow usages live in a flat CSR arena (usage_resource_[]/
//    usage_weight_[] plus per-flow {begin,count} offsets), not per-flow
//    heap vectors. Removed flows park their slot + arena span on a
//    free-list and add_flow recycles them, so neither the flow table nor
//    the arena grows under steady-state churn.
//  - Per-resource incidence lists (resource -> {flow, arena index}) let
//    the freeze pass mark only flows actually crossing a saturated
//    resource instead of rescanning every unfrozen flow's usages.
//  - A mutation epoch is bumped by add_flow/remove_flow/set_capacity/
//    set_capacity_factor/set_flow_cap; solve() returns the cached rate
//    vector when the epoch is unchanged, which makes aggregate_rate()
//    and utilization() free right after a solve. All per-solve scratch
//    is reusable member storage: after warm-up a solve performs zero
//    heap allocations (stats().scratch_grows counts the exceptions).
//
// The allocation is bit-identical to the historical per-flow-vector
// solver: live flows are kept on an insertion-order list and every
// floating-point accumulation (initial weights, residual subtraction,
// freeze-time weight release, aggregate/utilization sums) walks flows in
// that order, which is exactly the ascending-FlowId order the old solver
// used before ids were recycled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "simcore/units.h"

namespace numaio::sim {

using ResourceId = std::size_t;
using FlowId = std::size_t;

/// One weighted traversal of a resource by a flow.
struct Usage {
  ResourceId resource = 0;
  double weight = 1.0;  ///< Units consumed per Gbps of flow rate.
};

class FlowSolver {
 public:
  /// Intrinsic per-solver counters, maintained whether or not an
  /// obs::Context is attached. Mirrors the solver.* metrics (which need
  /// an observer) so tests and tools can assert on cache/scratch
  /// behavior without wiring a registry.
  struct SolveStats {
    std::uint64_t solve_calls = 0;    ///< solve() invocations (hits + misses).
    std::uint64_t cache_hits = 0;     ///< Solves answered from the epoch cache.
    std::uint64_t cache_misses = 0;   ///< Solves that ran water-filling.
    std::uint64_t rounds = 0;         ///< Water-filling rounds across misses.
    std::uint64_t flows_scanned = 0;  ///< Unfrozen-flow visits across rounds.
    std::uint64_t resource_touches = 0;  ///< Per-usage residual updates.
    std::uint64_t scratch_grows = 0;  ///< Solve-path scratch (re)allocations.
  };

  /// Registers a resource. `capacity` may be kUnlimited.
  ResourceId add_resource(std::string name, Gbps capacity);

  /// Adjusts a resource's base capacity (e.g. CPU budget shrinking under
  /// interrupt load). The effective capacity is base * factor; the factor
  /// set by set_capacity_factor survives this call. Takes effect at the
  /// next solve().
  void set_capacity(ResourceId id, Gbps capacity);

  /// Scales a resource multiplicatively without forgetting its base
  /// capacity: effective capacity = base * factor. Used by fault and
  /// degradation models (link degrade, MC throttle) so a later
  /// factor-reset restores the calibrated base exactly. `factor` must be
  /// finite and > 0; 1.0 removes the scaling.
  void set_capacity_factor(ResourceId id, double factor);
  double capacity_factor(ResourceId id) const;

  /// Effective capacity (base * factor).
  Gbps capacity(ResourceId id) const;
  const std::string& resource_name(ResourceId id) const;
  std::size_t resource_count() const { return resources_.size(); }

  /// Adds a flow with weighted resource usages (a resource may appear more
  /// than once; weights accumulate) and an optional private rate cap.
  /// The returned id may recycle the slot of a previously removed flow;
  /// ids are only meaningful while the flow is alive.
  FlowId add_flow(std::vector<Usage> usages, Gbps rate_cap = kUnlimited);

  /// Convenience: unit-weight usage of each resource on `path`.
  FlowId add_flow_over(const std::vector<ResourceId>& path,
                       Gbps rate_cap = kUnlimited);

  /// Removes a flow; the slot and its arena span go on the free-list and
  /// a later add_flow may hand the same id out again. Holding a FlowId
  /// across remove_flow is a use-after-free bug on the caller's side.
  void remove_flow(FlowId id);

  void set_flow_cap(FlowId id, Gbps rate_cap);
  Gbps flow_cap(FlowId id) const;
  bool flow_alive(FlowId id) const;
  std::size_t live_flow_count() const { return live_flows_; }

  /// Attaches an observability context (nullptr detaches). Each solve()
  /// then records round-level profiling counters (`solver.rounds`,
  /// `solver.rounds_per_solve`, `solver.flows_scanned`,
  /// `solver.resource_touches`), cache behavior (`solver.solves`,
  /// `solver.cache_hits`, `solver.cache_misses`) and wall time
  /// (`solver.solve_us`, cache misses only). The context must outlive
  /// the solver or be detached first.
  void set_observer(obs::Context* obs);

  /// Computes the max-min-fair allocation for all live flows, or returns
  /// the cached allocation when nothing mutated since the last solve.
  /// The returned vector is indexed by FlowId (slot); removed flows
  /// report 0. The reference stays valid until the next mutation +
  /// solve. Logically const but not safe to call concurrently: it reuses
  /// member scratch.
  const std::vector<Gbps>& solve() const;

  /// Sum of the allocation over all live flows. Free when cached.
  Gbps aggregate_rate() const;

  /// Utilization (weighted usage / capacity) of one resource under the
  /// current allocation; 0 for unlimited resources. Free when cached.
  double utilization(ResourceId id) const;

  /// Mutation epoch: bumped whenever a change invalidates the solve
  /// cache. Value-preserving mutations (set_capacity to the same
  /// capacity, set_flow_cap to the same cap) keep the cache warm.
  std::uint64_t epoch() const { return epoch_; }

  const SolveStats& stats() const { return stats_; }

 private:
  static constexpr FlowId kNoFlow = static_cast<FlowId>(-1);

  struct Resource {
    std::string name;
    Gbps base = kUnlimited;   ///< Calibrated capacity (set_capacity).
    double factor = 1.0;      ///< Multiplicative scale (set_capacity_factor).
    Gbps capacity = kUnlimited;  ///< Effective: base * factor, cached.
  };

  /// Per-flow CSR header. `begin`/`count` index the usage arena; `span`
  /// is the allocated arena width (>= count) so recycled slots can host
  /// smaller flows in place. `prev`/`next` thread live flows in
  /// insertion order (the solve iteration order).
  struct FlowMeta {
    std::size_t begin = 0;
    std::size_t count = 0;
    std::size_t span = 0;
    Gbps cap = kUnlimited;
    bool alive = false;
    FlowId prev = kNoFlow;
    FlowId next = kNoFlow;
  };

  /// One usage seen from its resource: which flow crosses, and where in
  /// the arena — enough to fix up usage_inc_pos_ on swap-remove.
  struct IncidenceEntry {
    FlowId flow = 0;
    std::size_t usage = 0;  ///< Arena index of the usage.
  };

  void bump_epoch();
  void refresh_capacity(Resource& r);
  template <class T>
  void ensure_size(std::vector<T>& v, std::size_t n) const;
  void solve_uncached() const;

  std::vector<Resource> resources_;
  std::vector<FlowMeta> flows_;
  FlowId head_ = kNoFlow;  ///< Oldest live flow (insertion order).
  FlowId tail_ = kNoFlow;  ///< Newest live flow.
  std::size_t live_flows_ = 0;
  std::vector<FlowId> free_slots_;  ///< Dead slots available for recycling.

  // CSR usage arena, parallel arrays indexed by FlowMeta::begin + i.
  std::vector<ResourceId> usage_resource_;
  std::vector<double> usage_weight_;
  std::vector<std::size_t> usage_inc_pos_;  ///< Position in incidence_[r].

  // resource -> usages crossing it; order is arbitrary (swap-remove).
  std::vector<std::vector<IncidenceEntry>> incidence_;

  // Epoch cache: solve() is a cache hit while epoch_ == cached_epoch_.
  std::uint64_t epoch_ = 0;
  mutable bool cache_valid_ = false;
  mutable std::uint64_t cached_epoch_ = 0;
  mutable std::vector<Gbps> rates_;  ///< Cached allocation, by slot.

  // Reusable solve scratch. Stamp arrays avoid O(R)/O(F) clears: an
  // entry is "set" when it equals the current token drawn from stamp_.
  mutable std::vector<FlowId> worklist_;     ///< Unfrozen flows, in order.
  mutable std::vector<ResourceId> touched_;  ///< Resources with live weight.
  mutable std::vector<double> weight_;
  mutable std::vector<Gbps> residual_;
  mutable std::vector<std::uint64_t> touch_stamp_;  ///< Per resource.
  mutable std::vector<std::uint64_t> cand_stamp_;   ///< Per flow slot.
  mutable std::uint64_t stamp_ = 0;

  mutable SolveStats stats_;

  // Metric ids are resolved once in set_observer; solve() is const, so it
  // reaches the registry through this pointer without touching solver state.
  obs::Context* obs_ = nullptr;
  obs::MetricsRegistry::Id m_solves_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_rounds_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_rounds_hist_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_solve_us_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_cache_hits_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_cache_misses_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_flows_scanned_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_touches_ = obs::MetricsRegistry::kNone;
};

}  // namespace numaio::sim
