// Max-min-fair bandwidth allocation over a network of directed resources.
//
// A Resource is any capacity-limited element on a data path: an HT link
// direction, a node's memory controller, a PCIe link, a device engine, a
// node's CPU budget. A Flow occupies a multiset of weighted resource usages
// (weight w means the flow consumes w units of the resource per Gbps of
// flow rate — e.g. a TCP flow consumes ~1 unit of NIC bandwidth but only a
// fraction of a CPU budget per Gbps) and may carry its own rate cap (a
// DMA-window or TCP-window limit).
//
// solve() runs progressive filling: all unfrozen flows grow at the same
// rate; a flow freezes when it reaches its own cap or when a resource it
// uses saturates. This is the classical water-filling construction of the
// (weighted-usage) max-min-fair allocation and terminates after at most
// (#resources + #flows) rounds.
//
// Storage and caching (see DESIGN.md §9 for the full layout):
//  - Flow usages live in a flat CSR arena (usage_resource_[]/
//    usage_weight_[] plus per-flow {begin,count} offsets), not per-flow
//    heap vectors. Removed flows park their slot + arena span on a
//    free-list and add_flow recycles them, so neither the flow table nor
//    the arena grows under steady-state churn.
//  - Per-resource incidence lists (resource -> {flow, arena index}) let
//    the freeze pass mark only flows actually crossing a saturated
//    resource instead of rescanning every unfrozen flow's usages.
//  - A mutation epoch is bumped by add_flow/remove_flow/set_capacity/
//    set_capacity_factor/set_flow_cap; solve() returns the cached rate
//    vector when the epoch is unchanged, which makes aggregate_rate()
//    and utilization() free right after a solve. All per-solve scratch
//    is reusable member storage: after warm-up a solve performs zero
//    heap allocations (stats().scratch_grows counts the exceptions).
//
// Execution engine (SolveOptions; DESIGN.md §11): with `partition` on,
// an incremental union-find over resources tracks resource-connected
// components — flows in disjoint components cannot interact under
// max-min fairness, so each component solves independently and a
// mutation dirties only its own component (clean components keep their
// cached rates across solves). With `threads` > 1 the dirty components
// of a solve run concurrently on a sim::ThreadPool, each worker using
// its own cache-line-padded scratch block. Rates are bit-identical
// across thread counts (each component's arithmetic is self-contained
// and accumulates in flow-insertion order); they are NOT bit-identical
// between partition on/off on multi-component graphs, because the
// monolithic solver's global water-filling delta reassociates the
// floating-point arithmetic across components. The default options
// therefore keep partitioning off.
//
// The default (monolithic) allocation is bit-identical to the historical
// per-flow-vector solver: live flows are kept on an insertion-order list
// and every floating-point accumulation (initial weights, residual
// subtraction, freeze-time weight release, aggregate/utilization sums)
// walks flows in that order, which is exactly the ascending-FlowId order
// the old solver used before ids were recycled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "simcore/solve_options.h"
#include "simcore/status.h"
#include "simcore/units.h"

namespace numaio::sim {

class ThreadPool;

using ResourceId = std::size_t;
using FlowId = std::size_t;

/// One weighted traversal of a resource by a flow.
struct Usage {
  ResourceId resource = 0;
  double weight = 1.0;  ///< Units consumed per Gbps of flow rate.
};

class FlowSolver {
 public:
  /// Intrinsic per-solver counters, maintained whether or not an
  /// obs::Context is attached. Mirrors the solver.* metrics (which need
  /// an observer) so tests and tools can assert on cache/scratch
  /// behavior without wiring a registry.
  struct SolveStats {
    std::uint64_t solve_calls = 0;    ///< solve() invocations (hits + misses).
    std::uint64_t cache_hits = 0;     ///< Solves answered from the epoch cache.
    std::uint64_t cache_misses = 0;   ///< Solves that ran water-filling.
    std::uint64_t rounds = 0;         ///< Water-filling rounds across misses.
    std::uint64_t flows_scanned = 0;  ///< Unfrozen-flow visits across rounds.
    std::uint64_t resource_touches = 0;  ///< Per-usage residual updates.
    std::uint64_t scratch_grows = 0;  ///< Solve-path scratch (re)allocations.
    // Component partitioning (SolveOptions::partition; otherwise 0).
    std::uint64_t parallel_batches = 0;    ///< Multi-component pool dispatches.
    std::uint64_t component_rebuilds = 0;  ///< Full union-find rebuilds.
    std::uint64_t components = 0;  ///< Components at the last real solve.
    std::uint64_t dirty_components = 0;  ///< Components re-solved by it.
    std::uint64_t largest_component_flows = 0;  ///< Biggest component then.
  };

  FlowSolver() : FlowSolver(SolveOptions{}) {}
  /// Execution-engine configuration (threads / partitioning /
  /// determinism); see simcore/solve_options.h. Options are normalized:
  /// threads > 1 implies partition.
  explicit FlowSolver(const SolveOptions& options);
  ~FlowSolver();

  // Movable (tests and builders hand solvers around by value) but not
  // copyable: the worker pool and per-worker scratch are identity-bound.
  FlowSolver(FlowSolver&&) noexcept;
  FlowSolver& operator=(FlowSolver&&) noexcept;
  FlowSolver(const FlowSolver&) = delete;
  FlowSolver& operator=(const FlowSolver&) = delete;

  /// Reconfigures the execution engine in place (flows, resources and
  /// stats survive). A real change invalidates the solve cache: toggling
  /// `partition` changes the floating-point association of the next
  /// solve, so the cached rates cannot be reused. Setting the current
  /// options again is a no-op.
  void set_options(const SolveOptions& options);
  const SolveOptions& options() const { return options_; }

  /// Registers a resource. `capacity` may be kUnlimited.
  ResourceId add_resource(std::string name, Gbps capacity);

  /// Adjusts a resource's base capacity (e.g. CPU budget shrinking under
  /// interrupt load). The effective capacity is base * factor; the factor
  /// set by set_capacity_factor survives this call. Takes effect at the
  /// next solve().
  void set_capacity(ResourceId id, Gbps capacity);

  /// Scales a resource multiplicatively without forgetting its base
  /// capacity: effective capacity = base * factor. Used by fault and
  /// degradation models (link degrade, MC throttle) so a later
  /// factor-reset restores the calibrated base exactly. `factor` must be
  /// finite and > 0; 1.0 removes the scaling.
  void set_capacity_factor(ResourceId id, double factor);
  double capacity_factor(ResourceId id) const;

  /// Effective capacity (base * factor).
  Gbps capacity(ResourceId id) const;
  const std::string& resource_name(ResourceId id) const;
  std::size_t resource_count() const { return resources_.size(); }

  /// Adds a flow with weighted resource usages (a resource may appear more
  /// than once; weights accumulate) and an optional private rate cap.
  /// The returned id may recycle the slot of a previously removed flow;
  /// ids are only meaningful while the flow is alive.
  FlowId add_flow(std::vector<Usage> usages, Gbps rate_cap = kUnlimited);

  /// Convenience: unit-weight usage of each resource on `path`.
  FlowId add_flow_over(const std::vector<ResourceId>& path,
                       Gbps rate_cap = kUnlimited);

  /// Removes a flow; the slot and its arena span go on the free-list and
  /// a later add_flow may hand the same id out again. Returns
  /// StatusCode::kUsage — with the solver untouched — when `id` is out
  /// of range or already dead, so double-remove races surface as a typed
  /// error instead of free-list corruption (historically this asserted in
  /// debug builds and silently corrupted in release).
  Status remove_flow(FlowId id);

  /// Bulk removal: detaches every live id in `ids` with a single epoch
  /// bump, so a burst of same-instant completions invalidates the solve
  /// cache once and the next solve pays one re-solve for the whole
  /// batch (per-component when partitioned). Dead, out-of-range and
  /// duplicate ids are skipped — batch callers may legitimately race a
  /// completion sweep against an abort. Returns the number of flows
  /// actually removed; rates after the bulk removal are bit-identical
  /// to the equivalent remove_flow sequence.
  std::size_t remove_flows(std::span<const FlowId> ids);

  /// Replaces a live flow's private rate cap. Returns StatusCode::kUsage
  /// (solver untouched) for an out-of-range or dead id, mirroring
  /// remove_flow; setting the current cap again keeps the solve cache
  /// warm.
  Status set_flow_cap(FlowId id, Gbps rate_cap);
  Gbps flow_cap(FlowId id) const;
  bool flow_alive(FlowId id) const;
  std::size_t live_flow_count() const { return live_flows_; }

  /// Attaches an observability context (nullptr detaches). Each solve()
  /// then records round-level profiling counters (`solver.rounds`,
  /// `solver.rounds_per_solve`, `solver.flows_scanned`,
  /// `solver.resource_touches`), cache behavior (`solver.solves`,
  /// `solver.cache_hits`, `solver.cache_misses`), wall time
  /// (`solver.solve_us`, cache misses only) and — in partition mode —
  /// component shape (`solver.components`,
  /// `solver.largest_component_flows` gauges, `solver.parallel_batches`
  /// and `solver.component_rebuilds` counters). The context must outlive
  /// the solver or be detached first.
  void set_observer(obs::Context* obs);

  /// Computes the max-min-fair allocation for all live flows, or returns
  /// the cached allocation when nothing mutated since the last solve.
  /// The returned vector is indexed by FlowId (slot); removed flows
  /// report 0. The reference stays valid until the next mutation +
  /// solve. Logically const but not safe to call concurrently: it reuses
  /// member scratch (worker threads, when enabled, live entirely inside
  /// one solve() call).
  const std::vector<Gbps>& solve() const;

  /// Sum of the allocation over all live flows. Free when cached.
  Gbps aggregate_rate() const;

  /// Utilization (weighted usage / capacity) of one resource under the
  /// current allocation; 0 for unlimited resources. Free when cached.
  double utilization(ResourceId id) const;

  /// Mutation epoch: bumped whenever a change invalidates the solve
  /// cache. Value-preserving mutations (set_capacity to the same
  /// capacity, set_flow_cap to the same cap, failed remove_flow/
  /// set_flow_cap on a dead id) keep the cache warm.
  std::uint64_t epoch() const { return epoch_; }

  const SolveStats& stats() const { return stats_; }

 private:
  static constexpr FlowId kNoFlow = static_cast<FlowId>(-1);
  static constexpr std::size_t kNoBucket = static_cast<std::size_t>(-1);

  struct Resource {
    std::string name;
    Gbps base = kUnlimited;   ///< Calibrated capacity (set_capacity).
    double factor = 1.0;      ///< Multiplicative scale (set_capacity_factor).
    Gbps capacity = kUnlimited;  ///< Effective: base * factor, cached.
  };

  /// Per-flow CSR header. `begin`/`count` index the usage arena; `span`
  /// is the allocated arena width (>= count) so recycled slots can host
  /// smaller flows in place. `prev`/`next` thread live flows in
  /// insertion order (the solve iteration order).
  struct FlowMeta {
    std::size_t begin = 0;
    std::size_t count = 0;
    std::size_t span = 0;
    Gbps cap = kUnlimited;
    bool alive = false;
    FlowId prev = kNoFlow;
    FlowId next = kNoFlow;
  };

  /// One usage seen from its resource: which flow crosses, and where in
  /// the arena — enough to fix up usage_inc_pos_ on swap-remove.
  struct IncidenceEntry {
    FlowId flow = 0;
    std::size_t usage = 0;  ///< Arena index of the usage.
  };

  /// Per-worker water-filling scratch (defined in flow_solver.cpp),
  /// cache-line padded so concurrent component solves never share lines.
  struct SolveScratch;

  /// One dirty component's work item: its flows in insertion order.
  struct Bucket {
    std::vector<FlowId> flows;
  };

  void bump_epoch();
  /// remove_flow minus validation and the epoch bump; shared by the
  /// single and bulk removal paths.
  void remove_flow_impl(FlowId id);
  void refresh_capacity(ResourceId id);
  template <class T>
  static void ensure_size(std::vector<T>& v, std::size_t n,
                          std::uint64_t& grows);
  void solve_uncached() const;
  /// Water-fills one flow set (a component, or all live flows in
  /// monolithic mode) using scratch `s`. `flows` is compacted in place
  /// as flows freeze; only rates_ slots of `flows` are written.
  void solve_span(FlowId* flows, std::size_t n, SolveScratch& s) const;
  void solve_partitioned() const;

  // Union-find over resources (partition mode). find() path-compresses,
  // so the parent array mutates under logically-const solves.
  ResourceId find_root(ResourceId r) const;
  /// const because rebuild_components() runs under logically-const
  /// solves; the union-find arrays are mutable.
  ResourceId unite(ResourceId a, ResourceId b) const;
  void mark_dirty(ResourceId root) const;
  /// Re-derives components from live flows (union-find cannot split, so
  /// removal churn is absorbed by periodic rebuilds) and marks all dirty.
  void rebuild_components() const;

  SolveOptions options_{};

  std::vector<Resource> resources_;
  std::vector<FlowMeta> flows_;
  FlowId head_ = kNoFlow;  ///< Oldest live flow (insertion order).
  FlowId tail_ = kNoFlow;  ///< Newest live flow.
  std::size_t live_flows_ = 0;
  std::vector<FlowId> free_slots_;  ///< Dead slots available for recycling.

  // CSR usage arena, parallel arrays indexed by FlowMeta::begin + i.
  std::vector<ResourceId> usage_resource_;
  std::vector<double> usage_weight_;
  std::vector<std::size_t> usage_inc_pos_;  ///< Position in incidence_[r].

  // resource -> usages crossing it; order is arbitrary (swap-remove).
  std::vector<std::vector<IncidenceEntry>> incidence_;

  // Epoch cache: solve() is a cache hit while epoch_ == cached_epoch_.
  std::uint64_t epoch_ = 0;
  mutable bool cache_valid_ = false;
  mutable std::uint64_t cached_epoch_ = 0;
  mutable std::vector<Gbps> rates_;  ///< Cached allocation, by slot.

  // Component state (partition mode only; empty otherwise). comp_dirty_
  // is indexed by component root resource; dirty_roots_ lists exactly
  // the set roots (entries may go stale when a dirty root is absorbed by
  // a union — find_root never returns those, and the solve-time sweep
  // clears them with the rest).
  mutable std::vector<ResourceId> dsu_parent_;
  mutable std::vector<std::uint32_t> dsu_size_;
  mutable std::vector<std::uint8_t> comp_dirty_;
  mutable std::vector<ResourceId> dirty_roots_;
  mutable bool all_dirty_ = true;       ///< Rebuild/reconfigure: solve all.
  mutable bool detached_dirty_ = true;  ///< Zero-usage flow set changed.
  mutable bool need_rebuild_ = false;
  mutable std::size_t removed_since_rebuild_ = 0;

  // Solve-time component bucketing scratch (serial pass), stamp-cleared.
  mutable std::vector<Bucket> buckets_;
  mutable std::vector<std::uint64_t> comp_stamp_;   ///< Per resource.
  mutable std::vector<std::size_t> comp_flows_;     ///< Flows under root.
  mutable std::vector<std::size_t> bucket_slot_;    ///< Root -> bucket.
  mutable std::uint64_t bucket_token_ = 0;

  // Per-worker scratch (scratch_[0] doubles as the monolithic scratch)
  // and the lazily created pool. unique_ptr keeps each worker's block on
  // its own heap allocation, cache-line aligned via alignas on the type.
  mutable std::vector<std::unique_ptr<SolveScratch>> scratch_;
  mutable std::unique_ptr<ThreadPool> pool_;

  mutable SolveStats stats_;

  // Metric ids are resolved once in set_observer; solve() is const, so it
  // reaches the registry through this pointer without touching solver state.
  obs::Context* obs_ = nullptr;
  obs::MetricsRegistry::Id m_solves_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_rounds_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_rounds_hist_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_solve_us_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_cache_hits_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_cache_misses_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_flows_scanned_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_touches_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_components_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_largest_comp_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_parallel_batches_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_rebuilds_ = obs::MetricsRegistry::kNone;
};

}  // namespace numaio::sim
