// Max-min-fair bandwidth allocation over a network of directed resources.
//
// A Resource is any capacity-limited element on a data path: an HT link
// direction, a node's memory controller, a PCIe link, a device engine, a
// node's CPU budget. A Flow occupies a multiset of weighted resource usages
// (weight w means the flow consumes w units of the resource per Gbps of
// flow rate — e.g. a TCP flow consumes ~1 unit of NIC bandwidth but only a
// fraction of a CPU budget per Gbps) and may carry its own rate cap (a
// DMA-window or TCP-window limit).
//
// solve() runs progressive filling: all unfrozen flows grow at the same
// rate; a flow freezes when it reaches its own cap or when a resource it
// uses saturates. This is the classical water-filling construction of the
// (weighted-usage) max-min-fair allocation and terminates after at most
// (#resources + #flows) rounds.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "simcore/units.h"

namespace numaio::sim {

using ResourceId = std::size_t;
using FlowId = std::size_t;

/// One weighted traversal of a resource by a flow.
struct Usage {
  ResourceId resource = 0;
  double weight = 1.0;  ///< Units consumed per Gbps of flow rate.
};

class FlowSolver {
 public:
  /// Registers a resource. `capacity` may be kUnlimited.
  ResourceId add_resource(std::string name, Gbps capacity);

  /// Adjusts a resource's capacity (e.g. CPU budget shrinking under
  /// interrupt load). Takes effect at the next solve().
  void set_capacity(ResourceId id, Gbps capacity);

  Gbps capacity(ResourceId id) const;
  const std::string& resource_name(ResourceId id) const;
  std::size_t resource_count() const { return resources_.size(); }

  /// Adds a flow with weighted resource usages (a resource may appear more
  /// than once; weights accumulate) and an optional private rate cap.
  FlowId add_flow(std::vector<Usage> usages, Gbps rate_cap = kUnlimited);

  /// Convenience: unit-weight usage of each resource on `path`.
  FlowId add_flow_over(const std::vector<ResourceId>& path,
                       Gbps rate_cap = kUnlimited);

  /// Removes a flow; its id is never reused.
  void remove_flow(FlowId id);

  void set_flow_cap(FlowId id, Gbps rate_cap);
  Gbps flow_cap(FlowId id) const;
  bool flow_alive(FlowId id) const;
  std::size_t live_flow_count() const { return live_flows_; }

  /// Attaches an observability context (nullptr detaches). Each solve()
  /// then counts its water-filling rounds (`solver.iterations`,
  /// `solver.iterations_per_solve`) and wall time (`solver.solve_us`).
  /// The context must outlive the solver or be detached first.
  void set_observer(obs::Context* obs);

  /// Computes the max-min-fair allocation for all live flows.
  /// The returned vector is indexed by FlowId; removed flows report 0.
  std::vector<Gbps> solve() const;

  /// Sum of the allocation over all live flows.
  Gbps aggregate_rate() const;

  /// Utilization (weighted usage / capacity) of one resource under the
  /// current allocation; 0 for unlimited resources.
  double utilization(ResourceId id) const;

 private:
  struct Resource {
    std::string name;
    Gbps capacity = kUnlimited;
  };
  struct Flow {
    std::vector<Usage> usages;
    Gbps cap = kUnlimited;
    bool alive = false;
  };

  std::vector<Resource> resources_;
  std::vector<Flow> flows_;
  std::size_t live_flows_ = 0;

  // Metric ids are resolved once in set_observer; solve() is const, so it
  // reaches the registry through this pointer without touching solver state.
  obs::Context* obs_ = nullptr;
  obs::MetricsRegistry::Id m_solves_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_iterations_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_iters_hist_ = obs::MetricsRegistry::kNone;
  obs::MetricsRegistry::Id m_solve_us_ = obs::MetricsRegistry::kNone;
};

}  // namespace numaio::sim
