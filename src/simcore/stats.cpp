#include "simcore/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace numaio::sim {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return s;
}

double percentile(std::span<const double> values, double p) {
  assert(!values.empty());
  assert(p >= 0.0 && p <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double idx = p * (static_cast<double>(sorted.size()) - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return percentile(values, 0.5);
}

double mad(std::span<const double> values) {
  if (values.empty()) return 0.0;
  const double med = median(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::abs(v - med));
  return median(deviations);
}

double trimmed_mean(std::span<const double> values, double trim_frac) {
  if (values.empty()) return 0.0;
  assert(trim_frac >= 0.0 && trim_frac < 0.5);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::size_t drop = static_cast<std::size_t>(
      trim_frac * static_cast<double>(sorted.size()));
  // At least one value must survive the two-sided trim.
  while (2 * drop >= sorted.size() && drop > 0) --drop;
  double sum = 0.0;
  for (std::size_t i = drop; i < sorted.size() - drop; ++i) sum += sorted[i];
  return sum / static_cast<double>(sorted.size() - 2 * drop);
}

RobustSummary robust_summarize(std::span<const double> values,
                               double trim_frac,
                               double dispersion_threshold) {
  RobustSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.trimmed_mean = trimmed_mean(values, trim_frac);
  s.median = median(values);
  s.mad = mad(values);
  s.rel_dispersion = s.median != 0.0 ? s.mad / std::abs(s.median) : 0.0;
  s.low_confidence = s.rel_dispersion > dispersion_threshold;
  return s;
}

}  // namespace numaio::sim
