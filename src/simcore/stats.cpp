#include "simcore/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace numaio::sim {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return s;
}

double percentile(std::span<const double> values, double p) {
  assert(!values.empty());
  assert(p >= 0.0 && p <= 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double idx = p * (static_cast<double>(sorted.size()) - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace numaio::sim
