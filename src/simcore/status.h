// Unified error reporting for the library's fallible entry points.
//
// A Status pairs a coarse code — aligned one-to-one with the CLI's exit
// codes (docs, README §exit codes) — with a human-readable message.
// Library code that fails throws StatusError, which carries a Status;
// tools/numaio_cli.cpp catches it and maps `status().exit_code()`
// straight to the process exit code, so file-not-found (3) and malformed
// input (4) stay distinguishable without per-tool exception taxonomies.
//
// StatusError derives from std::invalid_argument: the parsers
// (io::parse_job_file, model::parse_host_model) historically threw that,
// and a large body of callers and tests catches it. Deriving keeps every
// existing `catch (const std::invalid_argument&)` working while new code
// can catch StatusError for the structured code.
#pragma once

#include <stdexcept>
#include <string>

namespace numaio {

/// Codes 0-4 match the CLI exit-code scheme byte for byte. Codes from
/// kOverloaded up are library-level request dispositions (an admission
/// rejection is a property of one request, not of the process); a tool
/// whose *run* fails because of one maps it to kRuntime at exit.
enum class StatusCode : int {
  kOk = 0,          ///< Success.
  kRuntime = 1,     ///< Internal/runtime failure.
  kUsage = 2,       ///< Bad command line.
  kNoFile = 3,      ///< File missing or unreadable.
  kParse = 4,       ///< File readable but malformed.
  kOverloaded = 5,  ///< Admission rejected: quota or queue bound exceeded.
};

/// Stable lowercase name ("ok", "runtime", "usage", "no-file", "parse",
/// "overloaded").
const char* status_code_name(StatusCode code);

struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }
  int exit_code() const { return static_cast<int>(code); }

  /// "<name>: <message>", or just the name when the message is empty.
  std::string to_string() const;
};

class StatusError : public std::invalid_argument {
 public:
  explicit StatusError(Status status);
  StatusError(StatusCode code, const std::string& message)
      : StatusError(Status{code, message}) {}

  const Status& status() const { return status_; }
  StatusCode code() const { return status_.code; }

 private:
  Status status_;
};

}  // namespace numaio
