// Sharded discrete-event engine: per-lane event heaps drained as
// deterministic fork-join rounds, plus a serial control queue
// (DESIGN.md §13).
//
// The serial EventEngine orders every event in one heap. That is exact
// but means a fleet of independent host timelines funnels through one
// comparator even though host events only interact at placement /
// refresh / fault instants. This engine splits the schedule in two:
//
//  * Lane events — plain-data records on one binary heap per lane (the
//    fleet maps lane == host). All lanes holding events at the current
//    instant drain them in one fork-join round on a sim::ThreadPool;
//    the handler runs lane-local (it may touch only that lane's state
//    and may schedule follow-ups onto its *own* lane) and must not emit
//    traces or metrics.
//  * Control events — closures on a serial heap, exactly like
//    EventEngine. One fires at a time.
//
// Per instant, lanes drain first, then a serial merge hook runs (the
// only place lane results become globally visible — commit in lane
// order there and the outcome is independent of worker count), then
// control events fire in (at, seq) order. Scheduling into lanes or
// control is serial-phase-only, so one global picture of the timeline
// exists at every commit point. The result: traces, verdicts and stats
// are bit-identical for any lane/worker count by construction — the
// same contract DESIGN.md §11/§12 set for the solver and admission.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "simcore/units.h"

namespace numaio::sim {

class ThreadPool;

class ShardedEventEngine {
 public:
  using Callback = std::function<void()>;

  /// One plain-data lane event. `kind`/`a`/`b`/`gen` are caller-defined
  /// payload (the fleet encodes projection alarms with a generation
  /// guard); `at`/`seq` order the lane's heap.
  struct LaneEvent {
    Ns at = 0.0;
    std::uint64_t seq = 0;
    int kind = 0;
    int a = 0;
    int b = 0;
    std::uint64_t gen = 0;
  };

  /// Runs lane-local for each drained event, possibly concurrently with
  /// other lanes' handlers. Must not touch other lanes, the control
  /// queue, traces, or metrics.
  using LaneHandler = std::function<void(int lane, const LaneEvent&)>;

  /// Serial barrier after each lane round, invoked at the round's
  /// instant. The only place lane-drain results may be published.
  using MergeHook = std::function<void(Ns at)>;

  /// `num_lanes` independent heaps; `pool` (optional, not owned) fans
  /// rounds with more than one due lane across workers. With a null
  /// pool or a 1-thread pool every round drains serially — that is the
  /// reference path the parallel drains are property-tested against.
  ShardedEventEngine(int num_lanes, ThreadPool* pool);

  void set_lane_handler(LaneHandler handler);
  void set_merge_hook(MergeHook hook);

  Ns now() const { return now_; }
  int num_lanes() const { return static_cast<int>(lanes_.size()); }

  /// Schedules a control closure at absolute time `at` (>= now()).
  /// Serial phases only (control events, merge hook, before run()).
  void schedule_at(Ns at, Callback fn);
  void schedule_in(Ns delay, Callback fn);

  /// Schedules a lane event. From serial phases any lane is fair game;
  /// a lane handler may only schedule onto the lane it is draining.
  void schedule_lane(int lane, Ns at, int kind, int a, int b,
                     std::uint64_t gen);

  /// Runs rounds and control events until both queues drain.
  Ns run();

  /// Runs everything with timestamp <= `until`, then advances the clock
  /// to `until` if it has not passed it.
  Ns run_until(Ns until);

  std::size_t pending() const;
  Ns next_event_time() const;

  /// Lane events fired over the engine's life (all lanes).
  long long lane_events_fired() const;
  /// Fork-join lane rounds executed (each ends in one merge-hook call).
  long long lane_rounds() const { return lane_rounds_; }
  /// Rounds whose due lanes were fanned across >1 pool worker.
  long long parallel_batches() const { return parallel_batches_; }

 private:
  /// One lane's heap, cache-line-aligned so concurrent drains of
  /// neighbouring lanes never share a line.
  struct alignas(64) Lane {
    std::vector<LaneEvent> heap;  ///< Min-heap on (at, seq).
    std::uint64_t next_seq = 0;
    long long fired = 0;
  };

  struct ControlEvent {
    Ns at;
    std::uint64_t seq;
    Callback fn;
  };

  /// Earliest lane-event time across lanes; kUnlimited when none.
  Ns next_lane_time() const;
  /// Pops and runs every event with at <= `t` on `lane`, in (at, seq)
  /// order. Returns the number fired.
  long long drain_lane(Lane& lane, int index, Ns t);
  /// One fork-join round at instant `t`: drains every due lane, then
  /// runs the merge hook.
  void run_round(Ns t);

  Ns now_ = 0.0;
  std::uint64_t next_control_seq_ = 0;
  bool in_lane_phase_ = false;
  long long lane_rounds_ = 0;
  long long parallel_batches_ = 0;
  std::vector<ControlEvent> control_;  ///< Min-heap on (at, seq).
  std::vector<Lane> lanes_;
  ThreadPool* pool_;  ///< Not owned; may be null.
  LaneHandler lane_handler_;
  MergeHook merge_hook_;
};

}  // namespace numaio::sim
