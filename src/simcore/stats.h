// Small descriptive-statistics helpers used by benches, reports and the
// stability analyses (the paper reports averages over 400 GB transfers,
// max-of-100 STREAM repetitions, and relies on rate stability §V-B).
#pragma once

#include <span>

namespace numaio::sim {

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Population standard deviation.
  std::size_t count = 0;

  /// Coefficient of variation (stddev / mean); 0 for a zero mean.
  double cv() const { return mean != 0.0 ? stddev / mean : 0.0; }
};

/// Summary of a series. An empty span yields a zero Summary.
Summary summarize(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 1]. Requires non-empty input;
/// the input need not be sorted.
double percentile(std::span<const double> values, double p);

}  // namespace numaio::sim
