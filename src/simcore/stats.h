// Small descriptive-statistics helpers used by benches, reports and the
// stability analyses (the paper reports averages over 400 GB transfers,
// max-of-100 STREAM repetitions, and relies on rate stability §V-B).
#pragma once

#include <span>

namespace numaio::sim {

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Population standard deviation.
  std::size_t count = 0;

  /// Coefficient of variation (stddev / mean); 0 for a zero mean.
  double cv() const { return mean != 0.0 ? stddev / mean : 0.0; }
};

/// Summary of a series. An empty span yields a zero Summary.
Summary summarize(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 1]. Requires non-empty input;
/// the input need not be sorted.
double percentile(std::span<const double> values, double p);

/// Median of a series (0 for an empty span).
double median(std::span<const double> values);

/// Median absolute deviation from the median — a dispersion estimate that
/// survives heavy-tailed outliers (a single stalled repetition moves the
/// stddev arbitrarily far but barely moves the MAD).
double mad(std::span<const double> values);

/// Symmetric trimmed mean: drops the lowest and highest `trim_frac`
/// fraction of the sorted values (at least one value survives). With
/// trim_frac = 0 this is the plain mean.
double trimmed_mean(std::span<const double> values, double trim_frac);

/// Outlier-robust location + dispersion of a repetition series. Under
/// fault injection the max-of-reps and plain-mean estimators the paper
/// uses become meaningless (one IRQ storm poisons them); these do not.
struct RobustSummary {
  double trimmed_mean = 0.0;  ///< 10%-trimmed by default (see robust_summarize).
  double median = 0.0;
  double mad = 0.0;
  /// MAD scaled to the median (relative dispersion); 0 for a zero median.
  double rel_dispersion = 0.0;
  /// Set when rel_dispersion exceeds the caller's threshold: the series is
  /// too noisy for its location estimate to be trusted.
  bool low_confidence = false;
  std::size_t count = 0;
};

/// Robust summary with the given trim fraction and the dispersion level
/// above which the sample is flagged low-confidence.
RobustSummary robust_summarize(std::span<const double> values,
                               double trim_frac = 0.1,
                               double dispersion_threshold = 0.05);

}  // namespace numaio::sim
