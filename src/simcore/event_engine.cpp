#include "simcore/event_engine.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace numaio::sim {

namespace {
// std::push_heap/pop_heap build a max-heap; invert the order for a min-heap.
struct Later {
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};
}  // namespace

void EventEngine::schedule_at(Ns at, Callback fn) {
  assert(at >= now_ && "cannot schedule into the past");
  heap_.push_back(Event{at, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventEngine::schedule_in(Ns delay, Callback fn) {
  assert(delay >= 0.0);
  schedule_at(now_ + delay, std::move(fn));
}

Ns EventEngine::next_event_time() const {
  return heap_.empty() ? kUnlimited : heap_.front().at;
}

void EventEngine::pop_and_run() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_ = ev.at;
  ev.fn();
}

Ns EventEngine::run() {
  while (!heap_.empty()) pop_and_run();
  return now_;
}

Ns EventEngine::run_until(Ns until) {
  while (!heap_.empty() && heap_.front().at <= until) pop_and_run();
  now_ = std::max(now_, until);
  return now_;
}

}  // namespace numaio::sim
