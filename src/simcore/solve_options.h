// SolveOptions: the one knob block for the flow-solver execution engine.
//
// This is the library's standard config-aggregate idiom (DESIGN.md §11
// "Config aggregates"): a plain struct whose fields carry their defaults
// in-line, passed by const reference with a `= {}` default argument, so
// call sites name only the knobs they change. membench::StreamConfig,
// io::StreamSpec and faults::RandomPlanConfig follow the same shape.
//
// Semantics:
//  - `threads` > 1 enables the sim::ThreadPool inside FlowSolver::solve().
//    Components are solved concurrently; thread counts above the live
//    component count simply leave workers idle. Asking for more threads
//    than hardware cores is allowed (useful for determinism tests).
//  - `partition` turns on resource-connected-component partitioning with
//    per-component dirty tracking: flows in disjoint components cannot
//    interact under max-min fairness, so a mutation re-solves only the
//    component it touched. It defaults to off because a partitioned solve
//    is NOT bit-identical to the monolithic solver on multi-component
//    graphs (the global water-filling delta is a min across components;
//    summing per-component deltas reassociates the floating-point
//    arithmetic). threads > 1 forces it on — parallelism needs the
//    decomposition.
//  - `deterministic` pins component -> worker assignment (component i of
//    the solve runs on worker i mod threads). Rates are bit-identical
//    either way (each component's arithmetic is self-contained); the flag
//    additionally makes scheduling reproducible for debugging. Off, the
//    pool load-balances by atomic work claiming.
//
// Determinism contract (tested in tests/test_flow_solver_parallel.cpp):
// for a fixed mutation history, the rate vector is a pure function of
// `partition` alone — any thread count, deterministic or not, produces
// bit-identical rates.
#pragma once

namespace numaio::sim {

struct SolveOptions {
  /// Worker threads for component solves; 1 = solve inline, no pool.
  int threads = 1;
  /// Solve resource-connected components independently with per-component
  /// dirty caching. Implied by threads > 1.
  bool partition = false;
  /// Fixed component->thread assignment instead of atomic work claiming.
  bool deterministic = true;

  /// Options as the solver will actually run them (threads clamped to
  /// >= 1, partition implied by threads > 1).
  SolveOptions normalized() const {
    SolveOptions n = *this;
    if (n.threads < 1) n.threads = 1;
    if (n.threads > 1) n.partition = true;
    return n;
  }

  friend bool operator==(const SolveOptions& a, const SolveOptions& b) {
    return a.threads == b.threads && a.partition == b.partition &&
           a.deterministic == b.deterministic;
  }
};

}  // namespace numaio::sim
