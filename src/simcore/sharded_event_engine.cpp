#include "simcore/sharded_event_engine.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "simcore/thread_pool.h"

namespace numaio::sim {

namespace {
// std::push_heap/pop_heap build a max-heap; invert the order for a min-heap.
struct Later {
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};
}  // namespace

ShardedEventEngine::ShardedEventEngine(int num_lanes, ThreadPool* pool)
    : lanes_(static_cast<std::size_t>(std::max(1, num_lanes))),
      pool_(pool) {}

void ShardedEventEngine::set_lane_handler(LaneHandler handler) {
  lane_handler_ = std::move(handler);
}

void ShardedEventEngine::set_merge_hook(MergeHook hook) {
  merge_hook_ = std::move(hook);
}

void ShardedEventEngine::schedule_at(Ns at, Callback fn) {
  assert(!in_lane_phase_ && "control scheduling is serial-phase only");
  assert(at >= now_ && "cannot schedule into the past");
  control_.push_back(ControlEvent{at, next_control_seq_++, std::move(fn)});
  std::push_heap(control_.begin(), control_.end(), Later{});
}

void ShardedEventEngine::schedule_in(Ns delay, Callback fn) {
  assert(delay >= 0.0);
  schedule_at(now_ + delay, std::move(fn));
}

void ShardedEventEngine::schedule_lane(int lane, Ns at, int kind, int a,
                                       int b, std::uint64_t gen) {
  assert(lane >= 0 && lane < num_lanes());
  // During a drain the lane's own handler appends follow-ups lane-locally;
  // asserting at >= now_ still holds (handlers only look forward).
  assert(at >= now_ && "cannot schedule into the past");
  Lane& l = lanes_[static_cast<std::size_t>(lane)];
  l.heap.push_back(LaneEvent{at, l.next_seq++, kind, a, b, gen});
  std::push_heap(l.heap.begin(), l.heap.end(), Later{});
}

Ns ShardedEventEngine::next_lane_time() const {
  Ns t = kUnlimited;
  for (const Lane& l : lanes_) {
    if (!l.heap.empty()) t = std::min(t, l.heap.front().at);
  }
  return t;
}

std::size_t ShardedEventEngine::pending() const {
  std::size_t n = control_.size();
  for (const Lane& l : lanes_) n += l.heap.size();
  return n;
}

Ns ShardedEventEngine::next_event_time() const {
  const Ns tc = control_.empty() ? kUnlimited : control_.front().at;
  return std::min(tc, next_lane_time());
}

long long ShardedEventEngine::lane_events_fired() const {
  long long n = 0;
  for (const Lane& l : lanes_) n += l.fired;
  return n;
}

long long ShardedEventEngine::drain_lane(Lane& lane, int index, Ns t) {
  long long fired = 0;
  while (!lane.heap.empty() && lane.heap.front().at <= t) {
    std::pop_heap(lane.heap.begin(), lane.heap.end(), Later{});
    const LaneEvent ev = lane.heap.back();
    lane.heap.pop_back();
    ++fired;
    lane_handler_(index, ev);
  }
  return fired;
}

void ShardedEventEngine::run_round(Ns t) {
  assert(lane_handler_ && "lane events scheduled without a handler");
  int due = 0;
  for (const Lane& l : lanes_) {
    if (!l.heap.empty() && l.heap.front().at <= t) ++due;
  }
  in_lane_phase_ = true;
  if (pool_ != nullptr && pool_->threads() > 1 && due > 1) {
    ++parallel_batches_;
    pool_->run(lanes_.size(), /*deterministic=*/true,
               [this, t](std::size_t index, int) {
                 Lane& lane = lanes_[index];
                 lane.fired +=
                     drain_lane(lane, static_cast<int>(index), t);
               });
  } else {
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      Lane& lane = lanes_[i];
      lane.fired += drain_lane(lane, static_cast<int>(i), t);
    }
  }
  in_lane_phase_ = false;
  ++lane_rounds_;
  if (merge_hook_) merge_hook_(t);
}

Ns ShardedEventEngine::run_until(Ns until) {
  for (;;) {
    const Ns tc = control_.empty() ? kUnlimited : control_.front().at;
    const Ns tl = next_lane_time();
    const Ns t = std::min(tc, tl);
    if (t > until || t == kUnlimited) break;
    now_ = std::max(now_, t);
    if (tl <= tc) {
      // Lanes first at every instant; the merge hook may schedule more
      // work at `t`, picked up by the next iteration.
      run_round(t);
      continue;
    }
    std::pop_heap(control_.begin(), control_.end(), Later{});
    ControlEvent ev = std::move(control_.back());
    control_.pop_back();
    ev.fn();
  }
  if (until != kUnlimited) now_ = std::max(now_, until);
  return now_;
}

Ns ShardedEventEngine::run() { return run_until(kUnlimited); }

}  // namespace numaio::sim
