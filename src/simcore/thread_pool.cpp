#include "simcore/thread_pool.h"

namespace numaio::sim {

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  helpers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    helpers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : helpers_) t.join();
}

void ThreadPool::run_share(int worker, std::size_t count, bool deterministic,
                           const Task& task) {
  if (deterministic) {
    for (std::size_t i = static_cast<std::size_t>(worker); i < count;
         i += static_cast<std::size_t>(threads_)) {
      task(i, worker);
    }
  } else {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      task(i, worker);
    }
  }
}

void ThreadPool::run(std::size_t count, bool deterministic,
                     const Task& task) {
  if (count == 0) return;
  if (threads_ == 1) {
    run_share(0, count, /*deterministic=*/true, task);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    count_ = count;
    deterministic_ = deterministic;
    next_.store(0, std::memory_order_relaxed);
    active_helpers_ = threads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  run_share(0, count, deterministic, task);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return active_helpers_ == 0; });
  task_ = nullptr;
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const Task* task = nullptr;
    std::size_t count = 0;
    bool deterministic = true;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = task_;
      count = count_;
      deterministic = deterministic_;
    }
    run_share(worker, count, deterministic, *task);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_helpers_;
    }
    // The batch owner in run() is the only waiter.
    done_cv_.notify_one();
  }
}

}  // namespace numaio::sim
