// SLIT-style distance tables — what "numactl --hardware" prints.
//
// Firmware exports the ACPI System Locality Information Table: relative
// distances normalized to 10 for local access. Linux derives them from
// hop counts, which is exactly why the paper calls them "often inaccurate"
// ([18], §II-B): they cannot express directional asymmetry or the
// PIO/DMA path split. slit_table() builds the table the way firmware
// does (hop-based); slit_accuracy() scores it against a measured
// bandwidth matrix the way the paper scores hop distance.
#pragma once

#include <string>
#include <vector>

#include "mem/membench.h"
#include "topo/routing.h"

namespace numaio::nm {

/// Firmware-style SLIT: 10 on the diagonal, 10 + 10 * hops elsewhere.
std::vector<std::vector<int>> slit_table(const topo::Topology& topo);

/// numactl-style rendering of the table ("node distances:" block).
std::string render_slit(const std::vector<std::vector<int>>& slit);

/// Fraction of comparable destination pairs where a *smaller* SLIT
/// distance coincides with *higher* measured bandwidth — the same scoring
/// the topology-inference analysis applies to hop distance. Near 1.0 only
/// on idealized hosts.
double slit_accuracy(const std::vector<std::vector<int>>& slit,
                     const mem::BandwidthMatrix& bw);

}  // namespace numaio::nm
