#include "nm/slit.h"

#include <cassert>
#include <iomanip>
#include <sstream>

namespace numaio::nm {

std::vector<std::vector<int>> slit_table(const topo::Topology& topo) {
  const topo::Routing routing(topo, topo::Routing::Metric::kHops);
  const int n = topo.num_nodes();
  std::vector<std::vector<int>> slit(
      static_cast<std::size_t>(n),
      std::vector<int>(static_cast<std::size_t>(n), 10));
  for (topo::NodeId a = 0; a < n; ++a) {
    for (topo::NodeId b = 0; b < n; ++b) {
      slit[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          10 + 10 * routing.hop_distance(a, b);
    }
  }
  return slit;
}

std::string render_slit(const std::vector<std::vector<int>>& slit) {
  std::ostringstream out;
  const std::size_t n = slit.size();
  out << "node distances:\n" << "node ";
  for (std::size_t b = 0; b < n; ++b) out << std::setw(4) << b;
  out << '\n';
  for (std::size_t a = 0; a < n; ++a) {
    out << std::setw(4) << a << ':';
    for (std::size_t b = 0; b < n; ++b) out << std::setw(4) << slit[a][b];
    out << '\n';
  }
  return out.str();
}

double slit_accuracy(const std::vector<std::vector<int>>& slit,
                     const mem::BandwidthMatrix& bw) {
  const int n = bw.num_nodes();
  assert(static_cast<int>(slit.size()) == n);
  long long agree = 0, comparable = 0;
  for (topo::NodeId src = 0; src < n; ++src) {
    for (topo::NodeId a = 0; a < n; ++a) {
      for (topo::NodeId b = a + 1; b < n; ++b) {
        const int da = slit[static_cast<std::size_t>(src)]
                           [static_cast<std::size_t>(a)];
        const int db = slit[static_cast<std::size_t>(src)]
                           [static_cast<std::size_t>(b)];
        if (da == db) continue;
        const double ba = bw.at(src, a);
        const double bb = bw.at(src, b);
        if (ba == bb) continue;
        ++comparable;
        if ((da < db) == (ba > bb)) ++agree;
      }
    }
  }
  return comparable > 0
             ? static_cast<double>(agree) / static_cast<double>(comparable)
             : 0.5;
}

}  // namespace numaio::nm
