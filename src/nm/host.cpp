#include "nm/host.h"

#include <algorithm>
#include <cassert>
#include <new>
#include <sstream>
#include <stdexcept>

namespace numaio::nm {

NodeId Buffer::home() const {
  assert(!placement.empty());
  NodeId best = placement.front().first;
  sim::Bytes best_bytes = placement.front().second;
  for (const auto& [node, bytes] : placement) {
    if (bytes > best_bytes || (bytes == best_bytes && node < best)) {
      best = node;
      best_bytes = bytes;
    }
  }
  return best;
}

Host::Host(fabric::Machine& machine, OsFootprint os)
    : machine_(machine), stats_(machine.num_nodes()) {
  const int n = machine_.num_nodes();
  free_bytes_.reserve(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) {
    const double total_gb = machine_.topology().node(i).memory_gb;
    const double resident_gb = i == 0 ? os.node0_gb : os.other_gb;
    const double free_gb = std::max(0.0, total_gb - resident_gb);
    free_bytes_.push_back(static_cast<sim::Bytes>(free_gb * 1024) * sim::kMiB);
  }
}

int Host::num_configured_nodes() const { return machine_.num_nodes(); }

int Host::num_configured_cores() const {
  return machine_.topology().total_cores();
}

int Host::cores_on_node(NodeId node) const {
  return machine_.topology().node(node).cores;
}

sim::Bytes Host::node_size_bytes(NodeId node) const {
  return static_cast<sim::Bytes>(
             machine_.topology().node(node).memory_gb * 1024) *
         sim::kMiB;
}

sim::Bytes Host::node_free_bytes(NodeId node) const {
  assert(node >= 0 && node < num_configured_nodes());
  return free_bytes_[static_cast<std::size_t>(node)];
}

Buffer Host::place_all_on(sim::Bytes size, NodeId node, NodeId intended) {
  auto& free = free_bytes_[static_cast<std::size_t>(node)];
  if (free < size) throw std::bad_alloc();
  free -= size;
  if (node == intended) {
    ++stats_.node(node).numa_hit;
  } else {
    ++stats_.node(node).numa_miss;
    ++stats_.node(intended).numa_foreign;
  }
  Buffer b;
  b.size = size;
  b.placement = {{node, size}};
  return b;
}

Buffer Host::alloc_on_node(sim::Bytes size, NodeId node) {
  assert(node >= 0 && node < num_configured_nodes());
  assert(size > 0);
  return place_all_on(size, node, node);
}

Buffer Host::alloc_interleaved(sim::Bytes size, std::span<const NodeId> nodes) {
  assert(size > 0);
  std::vector<NodeId> targets(nodes.begin(), nodes.end());
  if (targets.empty()) {
    for (NodeId i = 0; i < num_configured_nodes(); ++i) targets.push_back(i);
  }
  const sim::Bytes share = size / targets.size();
  sim::Bytes remainder = size - share * targets.size();
  // All-or-nothing: check capacity before touching counters.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const sim::Bytes want = share + (i == 0 ? remainder : 0);
    if (node_free_bytes(targets[i]) < want) throw std::bad_alloc();
  }
  Buffer b;
  b.size = size;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const sim::Bytes want = share + (i == 0 ? remainder : 0);
    if (want == 0) continue;
    free_bytes_[static_cast<std::size_t>(targets[i])] -= want;
    ++stats_.node(targets[i]).interleave_hit;
    b.placement.emplace_back(targets[i], want);
  }
  return b;
}

Buffer Host::alloc_local(sim::Bytes size, NodeId running_node) {
  assert(running_node >= 0 && running_node < num_configured_nodes());
  assert(size > 0);
  if (node_free_bytes(running_node) >= size) {
    return place_all_on(size, running_node, running_node);
  }
  // Local node full: fall back to the node with the most free memory
  // (Linux falls back by distance; with a calibrated fabric the
  // most-free-node heuristic keeps experiments deterministic and is
  // equivalent for our idle-host scenarios).
  NodeId fallback = running_node;
  sim::Bytes best_free = 0;
  for (NodeId i = 0; i < num_configured_nodes(); ++i) {
    if (i == running_node) continue;
    if (node_free_bytes(i) > best_free) {
      best_free = node_free_bytes(i);
      fallback = i;
    }
  }
  if (best_free < size) throw std::bad_alloc();
  return place_all_on(size, fallback, running_node);
}

Buffer Host::alloc_with_policy(sim::Bytes size, const Policy& policy,
                               NodeId running_node) {
  switch (policy.mode) {
    case MemMode::kLocalPreferred:
      return alloc_local(size, policy.cpu_node.value_or(running_node));
    case MemMode::kBind: {
      // Hard binding: first node in the set with room, else failure.
      for (NodeId node : policy.mem_nodes) {
        if (node_free_bytes(node) >= size) {
          return place_all_on(size, node, node);
        }
      }
      throw std::bad_alloc();
    }
    case MemMode::kPreferred: {
      assert(policy.mem_nodes.size() == 1);
      const NodeId preferred = policy.mem_nodes.front();
      if (node_free_bytes(preferred) >= size) {
        return place_all_on(size, preferred, preferred);
      }
      return alloc_local(size, preferred);  // preferred full: soft fallback
    }
    case MemMode::kInterleave:
      return alloc_interleaved(size, policy.mem_nodes);
  }
  throw std::logic_error("alloc_with_policy: unreachable");
}

void Host::free(Buffer& buffer) {
  for (const auto& [node, bytes] : buffer.placement) {
    free_bytes_[static_cast<std::size_t>(node)] += bytes;
  }
  buffer.placement.clear();
  buffer.size = 0;
}

void Host::reset_stats() { stats_ = AllocStats(num_configured_nodes()); }

std::string Host::hardware_report() const {
  std::ostringstream out;
  const int n = num_configured_nodes();
  out << "available: " << n << " nodes (0-" << n - 1 << ")\n";
  for (NodeId i = 0; i < n; ++i) {
    out << "node " << i << " cpus:";
    // Cores are numbered node-major, like the paper's testbed.
    int first = 0;
    for (NodeId j = 0; j < i; ++j) first += cores_on_node(j);
    for (int c = 0; c < cores_on_node(i); ++c) out << ' ' << first + c;
    out << '\n';
    out << "node " << i << " size: " << node_size_bytes(i) / sim::kMiB
        << " MB\n";
    out << "node " << i << " free: " << node_free_bytes(i) / sim::kMiB
        << " MB\n";
  }
  return out.str();
}

}  // namespace numaio::nm
