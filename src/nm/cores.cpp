#include "nm/cores.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace numaio::nm {

topo::NodeId node_of_core(const topo::Topology& topo, int core) {
  if (core < 0) throw std::out_of_range("core id must be non-negative");
  int base = 0;
  for (topo::NodeId node = 0; node < topo.num_nodes(); ++node) {
    const int cores = topo.node(node).cores;
    if (core < base + cores) return node;
    base += cores;
  }
  throw std::out_of_range("core id " + std::to_string(core) +
                          " beyond the host's " + std::to_string(base) +
                          " cores");
}

int first_core_of(const topo::Topology& topo, topo::NodeId node) {
  int base = 0;
  for (topo::NodeId v = 0; v < node; ++v) base += topo.node(v).cores;
  return base;
}

std::vector<topo::NodeId> nodes_of_core_list(const topo::Topology& topo,
                                             const std::string& list) {
  std::vector<topo::NodeId> nodes;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) {
      throw std::invalid_argument("empty entry in core list '" + list + "'");
    }
    const auto dash = item.find('-');
    int lo = 0, hi = 0;
    try {
      if (dash != std::string::npos) {
        lo = std::stoi(item.substr(0, dash));
        hi = std::stoi(item.substr(dash + 1));
      } else {
        lo = hi = std::stoi(item);
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("bad core list '" + list + "'");
    }
    if (lo > hi) {
      throw std::invalid_argument("descending range in core list '" + list +
                                  "'");
    }
    for (int core = lo; core <= hi; ++core) {
      nodes.push_back(node_of_core(topo, core));
    }
  }
  if (nodes.empty()) {
    throw std::invalid_argument("core list '" + list + "' is empty");
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace numaio::nm
