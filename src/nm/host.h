// Host: the libnuma-facing view of a simulated Machine.
//
// Mirrors the libnuma entry points the paper's Algorithm 1 is written
// against (numa_num_configured_nodes, numa_alloc_onnode, run-on-node
// binding) plus the allocation bookkeeping behind numastat and
// "numactl --hardware". Buffers are placement records, not real memory:
// what matters to every experiment is *where* data lives, which determines
// the fabric paths transfers occupy.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fabric/machine.h"
#include "nm/numastat.h"
#include "nm/policy.h"
#include "simcore/units.h"

namespace numaio::nm {

/// A NUMA-placed allocation: total size plus bytes per node. For
/// non-interleaved buffers the placement is a single node.
struct Buffer {
  sim::Bytes size = 0;
  std::vector<std::pair<NodeId, sim::Bytes>> placement;

  /// Node holding the largest share (ties: lowest id). The home node
  /// determines fabric paths for whole-buffer transfers.
  NodeId home() const;
  bool interleaved() const { return placement.size() > 1; }
};

/// OS memory resident per node at "boot". The paper measured ~1.5 GB free
/// on node 0 versus ~4 GB on the others on an idle system (§IV-A) because
/// kernel buffers and shared libraries live on node 0.
struct OsFootprint {
  double node0_gb = 2.5;
  double other_gb = 0.1;
};

class Host {
 public:
  explicit Host(fabric::Machine& machine, OsFootprint os = {});

  fabric::Machine& machine() { return machine_; }
  const fabric::Machine& machine() const { return machine_; }

  // --- libnuma-style enumeration -----------------------------------------
  int num_configured_nodes() const;       ///< numa_num_configured_nodes()
  int num_configured_cores() const;       ///< total cores in the host
  int cores_on_node(NodeId node) const;
  sim::Bytes node_size_bytes(NodeId node) const;   ///< installed memory
  sim::Bytes node_free_bytes(NodeId node) const;   ///< currently free

  // --- allocation ---------------------------------------------------------
  /// numa_alloc_onnode: bind to one node, throw std::bad_alloc if full.
  Buffer alloc_on_node(sim::Bytes size, NodeId node);
  /// numa_alloc_interleaved over the given nodes (all nodes when empty).
  Buffer alloc_interleaved(sim::Bytes size, std::span<const NodeId> nodes = {});
  /// Default kernel policy: local to `running_node`, falling back to the
  /// node with the most free memory when the local node is full.
  Buffer alloc_local(sim::Bytes size, NodeId running_node);
  /// Allocation under an explicit Policy for a task running on
  /// `running_node` (what numactl does to an executable).
  Buffer alloc_with_policy(sim::Bytes size, const Policy& policy,
                           NodeId running_node);
  /// Releases a buffer's memory; the buffer is emptied.
  void free(Buffer& buffer);

  const AllocStats& stats() const { return stats_; }
  void reset_stats();

  /// "numactl --hardware"-style report: nodes, cores, memory sizes and
  /// free memory (reproducing the node-0 OS-residency observation).
  std::string hardware_report() const;

 private:
  Buffer place_all_on(sim::Bytes size, NodeId node, NodeId intended);

  fabric::Machine& machine_;
  std::vector<sim::Bytes> free_bytes_;
  AllocStats stats_;
};

}  // namespace numaio::nm
