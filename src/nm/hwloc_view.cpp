#include "nm/hwloc_view.h"

#include <sstream>

namespace numaio::nm {

std::string render_hwloc(const topo::Topology& topo) {
  std::ostringstream out;
  double total_gb = 0.0;
  for (const auto& n : topo.nodes()) total_gb += n.memory_gb;
  out << "Machine (" << total_gb << "GB total) \"" << topo.name() << "\"\n";
  int core_index = 0;
  for (int pkg = 0; pkg < topo.num_packages(); ++pkg) {
    out << "  Package P#" << pkg << '\n';
    for (topo::NodeId i = 0; i < topo.num_nodes(); ++i) {
      const auto& node = topo.node(i);
      if (node.package != pkg) continue;
      out << "    NUMANode N#" << i << " (" << node.memory_gb << "GB)\n";
      out << "      Cores:";
      for (int c = 0; c < node.cores; ++c) out << " PU#" << core_index++;
      out << '\n';
      if (node.io_hub) {
        out << "      HostBridge (PCIe root / I/O hub)\n";
      }
    }
  }
  out << "(note: node interconnect wiring is not part of this view)\n";
  return out.str();
}

std::string render_interconnect(const topo::Topology& topo) {
  std::ostringstream out;
  out << "Interconnect links of \"" << topo.name() << "\":\n";
  for (const auto& l : topo.links()) {
    out << "  " << l.a << " <-> " << l.b << "  width "
        << l.width_bits_ab << "/" << l.width_bits_ba << " bits, "
        << l.latency_ns << " ns\n";
  }
  return out.str();
}

}  // namespace numaio::nm
