// hwloc-style rendering of a host topology (§II-B).
//
// The Portable Hardware Locality tool prints the hierarchy
// Machine -> Package -> NUMANode -> Cores (+ PCI devices) but — as the
// paper points out — says nothing about how the NUMA nodes are
// interconnected. render_hwloc() reproduces exactly that view;
// render_interconnect() prints the part hwloc cannot show, which is why a
// characterization methodology is needed in the first place.
#pragma once

#include <string>

#include "topo/topology.h"

namespace numaio::nm {

/// The hierarchy view hwloc's lstopo would print.
std::string render_hwloc(const topo::Topology& topo);

/// The link-level wiring (adjacency with per-direction widths) that hwloc
/// does not expose.
std::string render_interconnect(const topo::Topology& topo);

}  // namespace numaio::nm
