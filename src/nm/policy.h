// NUMA placement policies, mirroring the Linux NUMA API (§II-B).
//
// The Linux default since kernel 2.6 is "local preferred": allocate on the
// node of the running CPU, fall back elsewhere when it is full. numactl(8)
// overrides this per task; libnuma does so per allocation. Our Policy
// covers the same space and parse_numactl() accepts the familiar
// command-line spellings so experiment configs read like the paper's.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "topo/topology.h"

namespace numaio::nm {

using topo::NodeId;

enum class MemMode {
  kLocalPreferred,  ///< Default: node of the running CPU, with fallback.
  kBind,            ///< --membind: only the given nodes (hard failure).
  kPreferred,       ///< --preferred: given node first, fall back anywhere.
  kInterleave,      ///< --interleave: round-robin pages over given nodes.
};

struct Policy {
  MemMode mode = MemMode::kLocalPreferred;
  /// Memory nodes the mode refers to (empty = all nodes for interleave).
  std::vector<NodeId> mem_nodes;
  /// --cpunodebind: pin execution to this node's cores.
  std::optional<NodeId> cpu_node;

  bool operator==(const Policy&) const = default;
};

/// Parses a numactl-style option string, e.g.
///   "--cpunodebind=7 --membind=3"
///   "--cpunodebind=4 --interleave=0,1,2"
///   "--preferred=2"
/// Unrecognized options or malformed node lists throw std::invalid_argument.
Policy parse_numactl(const std::string& spec);

/// Renders a Policy back to its numactl-style spelling.
std::string to_numactl_string(const Policy& policy);

}  // namespace numaio::nm
