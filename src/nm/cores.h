// Core-level binding helpers.
//
// §IV-A: "Cores attached to the same NUMA node are supposed to show the
// identical memory and I/O bandwidth when accessing data on a given node
// ... Hence, we need only to focus on node-level characterization."
// These helpers expose the core<->node mapping (numbered node-major, as
// the hardware report prints) so callers can express core-level bindings,
// and node_of_core() lets the node-level machinery serve them. The
// equivalence itself is checked by tests/bench rather than assumed.
#pragma once

#include "topo/topology.h"

namespace numaio::nm {

/// Node owning `core` under node-major numbering; throws
/// std::out_of_range for an invalid core id.
topo::NodeId node_of_core(const topo::Topology& topo, int core);

/// First core id of `node` (node-major numbering).
int first_core_of(const topo::Topology& topo, topo::NodeId node);

/// Parses a taskset-style core list ("0,3-5") and returns the node ids
/// the cores map to, deduplicated and sorted. Throws std::invalid_argument
/// on malformed input, std::out_of_range on bad core ids.
std::vector<topo::NodeId> nodes_of_core_list(const topo::Topology& topo,
                                             const std::string& list);

}  // namespace numaio::nm
