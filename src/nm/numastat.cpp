#include "nm/numastat.h"

#include <iomanip>
#include <sstream>

namespace numaio::nm {

std::string AllocStats::report() const {
  std::ostringstream out;
  out << std::left << std::setw(16) << "";
  for (int i = 0; i < num_nodes(); ++i) {
    out << std::right << std::setw(10) << ("node" + std::to_string(i));
  }
  out << '\n';
  auto row = [&](const char* label, auto member) {
    out << std::left << std::setw(16) << label;
    for (int i = 0; i < num_nodes(); ++i) {
      out << std::right << std::setw(10) << per_node_[static_cast<std::size_t>(i)].*member;
    }
    out << '\n';
  };
  row("numa_hit", &NodeStats::numa_hit);
  row("numa_miss", &NodeStats::numa_miss);
  row("numa_foreign", &NodeStats::numa_foreign);
  row("interleave_hit", &NodeStats::interleave_hit);
  return out.str();
}

}  // namespace numaio::nm
