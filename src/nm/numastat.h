// numastat-style allocation counters (§II-B): per-node hit/miss/foreign and
// interleave statistics maintained by the Host allocator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/topology.h"

namespace numaio::nm {

/// Counters for one NUMA node, with the same meanings as numastat(8):
///  - numa_hit: allocations that landed on the node they were intended for.
///  - numa_miss: allocations that landed here although intended elsewhere.
///  - numa_foreign: allocations intended here that were pushed elsewhere
///    (every miss on node A is a foreign on the intended node B).
///  - interleave_hit: interleaved allocations that landed as intended.
struct NodeStats {
  std::uint64_t numa_hit = 0;
  std::uint64_t numa_miss = 0;
  std::uint64_t numa_foreign = 0;
  std::uint64_t interleave_hit = 0;
};

class AllocStats {
 public:
  explicit AllocStats(int num_nodes)
      : per_node_(static_cast<std::size_t>(num_nodes)) {}

  NodeStats& node(topo::NodeId id) {
    return per_node_[static_cast<std::size_t>(id)];
  }
  const NodeStats& node(topo::NodeId id) const {
    return per_node_[static_cast<std::size_t>(id)];
  }
  int num_nodes() const { return static_cast<int>(per_node_.size()); }

  /// numastat-style table.
  std::string report() const;

 private:
  std::vector<NodeStats> per_node_;
};

}  // namespace numaio::nm
