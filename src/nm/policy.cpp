#include "nm/policy.h"

#include <sstream>
#include <stdexcept>

namespace numaio::nm {

namespace {

std::vector<NodeId> parse_node_list(const std::string& list) {
  std::vector<NodeId> nodes;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) {
      throw std::invalid_argument("parse_numactl: empty node in list '" +
                                  list + "'");
    }
    const auto dash = item.find('-');
    try {
      if (dash != std::string::npos) {
        const int lo = std::stoi(item.substr(0, dash));
        const int hi = std::stoi(item.substr(dash + 1));
        if (lo > hi) throw std::invalid_argument("range");
        for (int v = lo; v <= hi; ++v) nodes.push_back(v);
      } else {
        nodes.push_back(std::stoi(item));
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("parse_numactl: bad node list '" + list +
                                  "'");
    }
  }
  if (nodes.empty()) {
    throw std::invalid_argument("parse_numactl: empty node list");
  }
  return nodes;
}

}  // namespace

Policy parse_numactl(const std::string& spec) {
  Policy policy;
  std::stringstream ss(spec);
  std::string token;
  while (ss >> token) {
    const auto eq = token.find('=');
    const std::string opt = token.substr(0, eq);
    const std::string val =
        eq == std::string::npos ? std::string() : token.substr(eq + 1);
    auto need_val = [&]() {
      if (val.empty()) {
        throw std::invalid_argument("parse_numactl: option '" + opt +
                                    "' requires a value");
      }
    };
    if (opt == "--cpunodebind" || opt == "-N") {
      need_val();
      const auto nodes = parse_node_list(val);
      if (nodes.size() != 1) {
        throw std::invalid_argument(
            "parse_numactl: --cpunodebind takes exactly one node here");
      }
      policy.cpu_node = nodes.front();
    } else if (opt == "--membind" || opt == "-m") {
      need_val();
      policy.mode = MemMode::kBind;
      policy.mem_nodes = parse_node_list(val);
    } else if (opt == "--preferred" || opt == "-p") {
      need_val();
      const auto nodes = parse_node_list(val);
      if (nodes.size() != 1) {
        throw std::invalid_argument(
            "parse_numactl: --preferred takes exactly one node");
      }
      policy.mode = MemMode::kPreferred;
      policy.mem_nodes = nodes;
    } else if (opt == "--interleave" || opt == "-i") {
      need_val();
      policy.mode = MemMode::kInterleave;
      policy.mem_nodes = parse_node_list(val);
    } else if (opt == "--localalloc" || opt == "-l") {
      policy.mode = MemMode::kLocalPreferred;
      policy.mem_nodes.clear();
    } else {
      throw std::invalid_argument("parse_numactl: unknown option '" + opt +
                                  "'");
    }
  }
  return policy;
}

std::string to_numactl_string(const Policy& policy) {
  std::string out;
  auto join = [](const std::vector<NodeId>& nodes) {
    std::string s;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (i > 0) s += ',';
      s += std::to_string(nodes[i]);
    }
    return s;
  };
  if (policy.cpu_node) {
    out += "--cpunodebind=" + std::to_string(*policy.cpu_node);
  }
  auto append = [&out](const std::string& part) {
    if (!out.empty()) out += ' ';
    out += part;
  };
  switch (policy.mode) {
    case MemMode::kLocalPreferred:
      append("--localalloc");
      break;
    case MemMode::kBind:
      append("--membind=" + join(policy.mem_nodes));
      break;
    case MemMode::kPreferred:
      append("--preferred=" + join(policy.mem_nodes));
      break;
    case MemMode::kInterleave:
      append("--interleave=" + join(policy.mem_nodes));
      break;
  }
  return out;
}

}  // namespace numaio::nm
