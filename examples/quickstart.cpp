// Quickstart: characterize a NUMA host's I/O bandwidth character without
// touching its I/O devices, then check the model against real transfers.
//
//   1. Bring up the simulated testbed (the paper's HP DL585 G7).
//   2. Run the iomodel methodology (Algorithm 1) for the device node.
//   3. Partition nodes into performance classes.
//   4. Probe one representative binding per class with fio.
//   5. Predict a multi-user mix with Eq. 1 and verify.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "numaio.h"

int main() {
  using namespace numaio;

  // 1. The testbed: 8 NUMA nodes, NIC + 2 SSDs on node 7.
  io::Testbed tb = io::Testbed::dl585();
  std::printf("host: %s, %d nodes, devices on node %d\n\n",
              tb.machine().profile().name.c_str(), tb.machine().num_nodes(),
              tb.device_node());
  std::printf("%s\n", tb.host().hardware_report().c_str());

  // 2. Algorithm 1: memcpy threads pinned to the device node imitate its
  //    DMA engine. No device is involved.
  const auto write_model =
      model::build_iomodel(tb.host(), tb.device_node(),
                           model::Direction::kDeviceWrite);
  const auto read_model =
      model::build_iomodel(tb.host(), tb.device_node(),
                           model::Direction::kDeviceRead);

  // 3. Performance classes (Tables IV/V).
  const auto classes = model::classify(read_model, tb.machine().topology());
  std::printf("device-read classes:\n");
  for (int c = 0; c < classes.num_classes(); ++c) {
    std::printf("  class %d: nodes {", c + 1);
    for (topo::NodeId v : classes.classes[static_cast<std::size_t>(c)]) {
      std::printf(" %d", v);
    }
    std::printf(" }  model avg %.1f Gbps\n",
                classes.class_avg[static_cast<std::size_t>(c)]);
  }
  (void)write_model;

  // 4. Probe one node per class with a real (simulated) RDMA_READ run —
  //    half the characterization cost of sweeping all 8 bindings.
  io::FioRunner fio(tb.host());
  std::vector<double> class_values;
  for (topo::NodeId rep : model::representative_nodes(classes)) {
    io::FioJob job;
    job.devices = {&tb.nic()};
    job.engine = io::kRdmaRead;
    job.cpu_node = rep;
    job.num_streams = 4;
    class_values.push_back(fio.run(job).aggregate);
    std::printf("probe class %zu via node %d: %.2f Gbps\n",
                class_values.size(), rep, class_values.back());
  }

  // 5. Eq. 1: predict a mixed workload, then run it.
  const std::vector<std::pair<topo::NodeId, int>> mix{{2, 2}, {0, 2}};
  const double predicted =
      model::predict_for_bindings(classes, class_values, mix);
  io::FioJob a;
  a.devices = {&tb.nic()};
  a.engine = io::kRdmaRead;
  a.cpu_node = 2;
  a.num_streams = 2;
  io::FioJob b = a;
  b.cpu_node = 0;
  const double measured = io::combined_aggregate(fio.run_concurrent({a, b}));
  std::printf(
      "\nmixed workload (2 procs node2 + 2 procs node0, RDMA_READ):\n"
      "  predicted %.3f Gbps, measured %.3f Gbps, error %.1f%%\n",
      predicted, measured,
      model::relative_error(predicted, measured) * 100.0);
  return 0;
}
