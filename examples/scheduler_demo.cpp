// Model-assisted I/O task placement (the paper's §V-B application).
//
// A data-intensive service runs N writer processes against the node-7 NIC.
// The naive policy pins everything to the device-local node; the
// model-assisted policy classifies nodes with the memcpy model, probes one
// node per class, and spreads processes over the classes whose probed
// performance is near-identical. We sweep N and engines to show where the
// spread wins and why.
#include <cstdio>
#include <vector>

#include "numaio.h"

namespace {

double run_placement(numaio::io::Testbed& tb, const char* engine,
                     const numaio::model::Placement& placement) {
  numaio::io::FioRunner fio(tb.host());
  std::vector<numaio::io::FioJob> jobs;
  for (numaio::topo::NodeId node : placement.nodes) {
    numaio::io::FioJob j;
    j.devices = {&tb.nic()};
    j.engine = engine;
    j.cpu_node = node;
    j.num_streams = 1;
    jobs.push_back(j);
  }
  return numaio::io::combined_aggregate(fio.run_concurrent(jobs));
}

}  // namespace

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();

  const auto m = model::build_iomodel(tb.host(), tb.device_node(),
                                      model::Direction::kDeviceWrite);
  const auto classes = model::classify(m, tb.machine().topology());

  for (const char* engine : {io::kRdmaWrite, io::kTcpSend}) {
    // Probe once per class.
    io::FioRunner fio(tb.host());
    std::vector<double> class_values;
    for (topo::NodeId rep : model::representative_nodes(classes)) {
      io::FioJob j;
      j.devices = {&tb.nic()};
      j.engine = engine;
      j.cpu_node = rep;
      j.num_streams = 4;
      class_values.push_back(fio.run(j).aggregate);
    }
    std::printf("\n%s class probes:", engine);
    for (double v : class_values) std::printf(" %.1f", v);
    std::printf(" Gbps\n");
    std::printf("  %4s %12s %12s %8s\n", "N", "all-on-7", "spread", "gain");
    for (int n : {2, 4, 6, 8}) {
      const auto spread = model::schedule_spread(classes, class_values, n);
      const auto local = model::schedule_all_local(tb.device_node(), n);
      const double agg_spread = run_placement(tb, engine, spread);
      const double agg_local = run_placement(tb, engine, local);
      std::printf("  %4d %12.2f %12.2f %7.1f%%\n", n, agg_local, agg_spread,
                  (agg_spread / agg_local - 1.0) * 100.0);
    }
  }
  std::printf(
      "\nTCP gains most: each Gbps costs ~1 CPU unit on the binding node,\n"
      "and node 7 also handles every device interrupt, so piling workers\n"
      "there starves the protocol stack (the paper's Fig-5 observation\n"
      "that node 6 outperforms the device-local node 7).\n");
  return 0;
}
