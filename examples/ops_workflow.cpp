// An operations workflow, end to end, using the toolkit's persistence:
//
//   1. provisioning: characterize the host once, cache the model to disk
//      (the artifact an ops team would version-control),
//   2. intake: a production request trace arrives as CSV,
//   3. planning: load the cached model, plan buffer policies for the
//      trace's pinned bindings,
//   4. execution: replay the trace as-is and with the plan applied,
//      comparing aggregate delivery.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "numaio.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();

  // 1. Characterize and cache.
  const std::string model_path = "/tmp/numaio_host.model";
  {
    model::CharacterizeConfig config;
    config.iomodel.repetitions = 20;
    const auto host_model = model::characterize_host(tb.host(), config);
    std::ofstream(model_path) << model::serialize(host_model);
    std::printf("cached host model to %s\n", model_path.c_str());
  }

  // 2. The request trace: RDMA readers pinned by the application layer.
  const std::string trace_text =
      "# nightly export fan-out\n"
      "0.0,rdma_read,0,48\n"
      "0.0,rdma_read,1,48\n"
      "0.5,rdma_read,4,64\n"
      "1.0,rdma_read,5,48\n";
  const auto entries = io::parse_trace(trace_text);

  // 3. Load the cached model and plan buffer policies for those bindings.
  std::ostringstream cached;
  cached << std::ifstream(model_path).rdbuf();
  const auto host_model = model::parse_host_model(cached.str());
  const auto& classes =
      host_model.classes_for(7, model::Direction::kDeviceRead);
  // Probe one node per class (the §V-A cost reduction).
  io::FioRunner fio(tb.host());
  std::vector<double> class_values;
  for (topo::NodeId rep : model::representative_nodes(classes)) {
    io::FioJob j;
    j.devices = {&tb.nic()};
    j.engine = io::kRdmaRead;
    j.cpu_node = rep;
    j.num_streams = 4;
    class_values.push_back(fio.run(j).aggregate);
  }
  std::vector<topo::NodeId> bindings;
  for (const auto& e : entries) bindings.push_back(e.cpu_node);
  const auto plan =
      model::plan_buffer_policies(classes, class_values, bindings);

  // 4. Replay: as-pinned vs with the planned buffer policies.
  auto replay = [&](bool apply_plan) {
    auto jobs = io::trace_to_jobs(entries, &tb.nic(), tb.ssds());
    if (apply_plan) {
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].job.mem_policy = plan.processes[i].policy;
      }
    }
    const auto results = fio.run_timed(jobs);
    double bits = 0.0;
    sim::Ns end = 0.0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      bits += results[i].aggregate * results[i].duration;
      end = std::max(end, jobs[i].start + results[i].duration);
    }
    return bits / end;  // delivered Gbps over the busy period
  };
  const double base = replay(false);
  const double planned = replay(true);

  std::printf("\nplanned buffer policies:\n");
  for (std::size_t i = 0; i < plan.processes.size(); ++i) {
    std::printf("  request %zu (node %d): %s\n", i,
                plan.processes[i].cpu_node,
                nm::to_numactl_string(plan.processes[i].policy).c_str());
  }
  std::printf("\ntrace delivery: pinned %.2f Gbps -> planned %.2f Gbps "
              "(%+.0f%%)\n",
              base, planned, (planned / base - 1.0) * 100.0);
  std::printf("the whole loop -- characterize, cache, load, plan, replay --\n"
              "never benchmarked more than one binding per class.\n");
  return 0;
}
