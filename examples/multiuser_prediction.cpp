// Multi-user bandwidth prediction with Eq. 1 across many traffic mixes.
//
// Classifies the device node once, probes each class once, and then
// predicts + verifies the aggregate bandwidth of a grid of mixed-node
// RDMA_READ workloads, printing the relative error per mix (the paper
// validates a single 50/50 mix at 3.1% error; we check the model holds
// across the whole mix space).
#include <cstdio>
#include <vector>

#include "numaio.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  io::FioRunner fio(tb.host());

  const auto m = model::build_iomodel(tb.host(), tb.device_node(),
                                      model::Direction::kDeviceRead);
  const auto classes = model::classify(m, tb.machine().topology());
  std::vector<double> class_values;
  for (topo::NodeId rep : model::representative_nodes(classes)) {
    io::FioJob j;
    j.devices = {&tb.nic()};
    j.engine = io::kRdmaRead;
    j.cpu_node = rep;
    j.num_streams = 4;
    class_values.push_back(fio.run(j).aggregate);
  }

  std::printf("RDMA_READ multi-user mixes (counts per binding node):\n");
  std::printf("  %-22s %10s %10s %8s\n", "mix", "predicted", "measured",
              "error");

  struct Mix {
    const char* label;
    std::vector<std::pair<topo::NodeId, int>> bindings;
  };
  const std::vector<Mix> mixes{
      {"2 x node2 + 2 x node0", {{2, 2}, {0, 2}}},  // the paper's case
      {"1 x node2 + 3 x node0", {{2, 1}, {0, 3}}},
      {"3 x node2 + 1 x node0", {{2, 3}, {0, 1}}},
      {"2 x node6 + 2 x node4", {{6, 2}, {4, 2}}},
      {"2 x node3 + 2 x node5", {{3, 2}, {5, 2}}},
      {"1 each of 0,2,4,6", {{0, 1}, {2, 1}, {4, 1}, {6, 1}}},
      {"4 x node0 (uniform)", {{0, 4}}},
  };

  double worst = 0.0;
  for (const Mix& mix : mixes) {
    const double predicted =
        model::predict_for_bindings(classes, class_values, mix.bindings);
    std::vector<io::FioJob> jobs;
    for (const auto& [node, count] : mix.bindings) {
      io::FioJob j;
      j.devices = {&tb.nic()};
      j.engine = io::kRdmaRead;
      j.cpu_node = node;
      j.num_streams = count;
      jobs.push_back(j);
    }
    const double measured = io::combined_aggregate(fio.run_concurrent(jobs));
    const double eps = model::relative_error(predicted, measured);
    worst = std::max(worst, eps);
    std::printf("  %-22s %10.3f %10.3f %7.1f%%\n", mix.label, predicted,
                measured, eps * 100.0);
  }
  std::printf("\nworst-case error %.1f%% (paper's validated mix: 3.1%%)\n",
              worst * 100.0);
  std::printf(
      "Eq. 1 slightly over-predicts heterogeneous mixes because the DMA\n"
      "engine round-robins across queues with unequal service times.\n");
  return 0;
}
