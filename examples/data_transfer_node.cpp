// A data transfer node (DTN) scenario: the motivating deployment for this
// line of work (the authors built wide-area data-movement services for
// DOE; see [25]). Bulk transfer requests arrive continuously and must be
// bound to NUMA nodes before their streams start.
//
// The demo characterizes the host once at "boot" (Algorithm 1 for both
// directions), then services the same request trace under the naive
// all-local policy and the model-driven adaptive policy, printing per-task
// turnaround percentiles.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "numaio.h"

namespace {

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  const double idx = p * (static_cast<double>(values.size()) - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();

  // Boot-time characterization: no device involvement, a few seconds of
  // memcpy on the device node.
  const auto wm =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceWrite);
  const auto rm =
      model::build_iomodel(tb.host(), 7, model::Direction::kDeviceRead);
  const auto wc = model::classify(wm, tb.machine().topology());
  const auto rc = model::classify(rm, tb.machine().topology());
  std::printf("characterized node 7: %d write classes, %d read classes\n",
              wc.num_classes(), rc.num_classes());

  // The request trace: 60 mixed ingest (recv/read) and egress (send/write)
  // transfers arriving over ~2 minutes.
  model::WorkloadConfig wl;
  wl.num_tasks = 60;
  wl.engine_mix = {io::kTcpSend, io::kTcpRecv, io::kRdmaWrite,
                   io::kRdmaRead};
  const auto tasks = model::generate_workload(wl);
  std::printf("trace: %d transfers over %.1f s, %.1f GiB total\n\n",
              wl.num_tasks, tasks.back().arrival / 1e9, [&] {
                double total = 0;
                for (const auto& t : tasks) {
                  total += static_cast<double>(t.bytes) / sim::kGiB;
                }
                return total;
              }());

  std::printf("%-16s %10s %10s %10s %10s %11s\n", "policy", "p50 s",
              "p90 s", "p99 s", "agg Gbps", "migrations");
  for (model::OnlinePolicy policy :
       {model::OnlinePolicy::kAllLocal, model::OnlinePolicy::kModelSpread,
        model::OnlinePolicy::kModelAdaptive}) {
    model::OnlineConfig config;
    config.policy = policy;
    model::OnlineScheduler scheduler(tb.host(), tb.nic(), wc, rc, config);
    const auto report = scheduler.run(tasks);
    std::vector<double> turnarounds;
    for (const auto& t : report.tasks) {
      turnarounds.push_back(t.turnaround() / 1e9);
    }
    std::printf("%-16s %10.2f %10.2f %10.2f %10.2f %11d\n",
                model::to_string(policy).c_str(),
                percentile(turnarounds, 0.5), percentile(turnarounds, 0.9),
                percentile(turnarounds, 0.99), report.aggregate,
                report.total_migrations);
  }
  std::printf(
      "\nthe all-local DTN funnels every stream through node 7's CPUs and\n"
      "engine queues; the model-driven policies spread load across the\n"
      "equivalent classes the characterization discovered, cutting tail\n"
      "latency without touching a single device during modelling.\n");
  return 0;
}
