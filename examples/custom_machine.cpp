// Bring your own machine: define a custom NUMA topology, derive a fabric
// profile from its link widths and latencies, attach a device, and run the
// full methodology on it — the toolkit is not tied to the paper's host.
//
// The example machine: a 2-socket, 4-node host ("two Magny-Cours
// packages") with an I/O hub on node 3 and deliberately narrow (4-bit)
// cross links from package 0, so the derived fabric has a genuinely
// weaker class that even shows through the device ceiling.
#include <cstdio>

#include "numaio.h"

int main() {
  using namespace numaio;

  // 1. Describe the hardware.
  std::vector<topo::NodeSpec> nodes{
      {0, 4, 8.0, false}, {0, 4, 8.0, false},
      {1, 4, 8.0, false}, {1, 4, 8.0, true},  // I/O hub on node 3
  };
  std::vector<topo::LinkSpec> links{
      {0, 1, 16, 16, 50.0},   // intra package 0
      {2, 3, 16, 16, 50.0},   // intra package 1
      {0, 3, 4, 16, 120.0},   // cross links: 4-bit toward node 3
      {1, 2, 4, 16, 120.0},
  };
  const topo::Topology topo =
      topo::Topology::build("custom-2p4n", std::move(nodes),
                            std::move(links));
  std::printf("%s\n", nm::render_hwloc(topo).c_str());
  std::printf("%s\n", nm::render_interconnect(topo).c_str());

  // 2. Derive the fabric character from the wiring (no calibration data).
  //    SolveOptions picks the contention solver's execution engine; the
  //    partitioned engine solves disconnected flow groups independently
  //    (and in parallel when threads > 1) with bit-identical rates.
  sim::SolveOptions solve;
  solve.partition = true;
  fabric::Machine machine{fabric::derived_profile(topo), solve};
  nm::Host host{machine};

  // 3. Run the methodology against the I/O-hub node.
  const topo::NodeId target = 3;
  const auto write_model =
      model::build_iomodel(host, target, model::Direction::kDeviceWrite);
  std::printf("device-write model of node %d:", target);
  for (double v : write_model.bw) std::printf(" %.1f", v);
  std::printf(" Gbps\n");

  const auto classes = model::classify(write_model, topo);
  for (int c = 0; c < classes.num_classes(); ++c) {
    std::printf("  class %d: {", c + 1);
    for (topo::NodeId v : classes.classes[static_cast<std::size_t>(c)]) {
      std::printf(" %d", v);
    }
    std::printf(" } avg %.1f Gbps\n",
                classes.class_avg[static_cast<std::size_t>(c)]);
  }

  // 4. Attach a NIC to the hub node and verify the class split shows up in
  //    real transfers.
  auto nic = io::make_connectx3(machine, target);
  io::FioRunner fio(host);
  std::printf("RDMA_WRITE per binding:");
  for (topo::NodeId node = 0; node < topo.num_nodes(); ++node) {
    io::FioJob j;
    j.devices = {nic.get()};
    j.engine = io::kRdmaWrite;
    j.cpu_node = node;
    j.num_streams = 4;
    std::printf(" node%d=%.1f", node, fio.run(j).aggregate);
  }
  std::printf(" Gbps\n");
  std::printf("\nthe 4-bit links toward node 3 put package 0 in a slower\n"
              "class for writes, and the model predicted it without\n"
              "touching the device.\n");
  return 0;
}
