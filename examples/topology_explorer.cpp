// Topology explorer: what the standard tools can and cannot tell you.
//
// Walks the four Figure-1 Magny-Cours layouts and the paper's host:
// hwloc-style hierarchy (no wiring!), the real interconnect, hop-distance
// matrices, numactl-style policies, and finally the §IV-A failure — the
// measured STREAM matrix of the calibrated host matches none of the
// candidate layouts.
#include <cstdio>

#include "numaio.h"

int main() {
  using namespace numaio;

  // hwloc shows the hierarchy but not the wiring (§II-B).
  const topo::Topology host = topo::dl585_g7();
  std::printf("%s\n", nm::render_hwloc(host).c_str());

  for (char v : {'a', 'b', 'c', 'd'}) {
    const topo::Topology t = topo::magny_cours_4p(v);
    const topo::Routing r(t, topo::Routing::Metric::kHops);
    const topo::Routing r_lat(t, topo::Routing::Metric::kLatency);
    const topo::LatencyModel lat(r_lat, topo::LatencyParams{100.0, 27.0});
    std::printf("layout (%c): diameter %d, mean remote hops %.2f, "
                "NUMA factor %.2f\n",
                v, r.diameter(), r.mean_remote_hops(), lat.numa_factor());
    std::printf("  hop matrix row for node 7:");
    for (topo::NodeId d = 0; d < t.num_nodes(); ++d) {
      std::printf(" %d", r.hop_distance(7, d));
    }
    std::printf("\n");
  }

  // numactl-style policy spellings drive experiment bindings.
  for (const char* spec :
       {"--cpunodebind=7 --membind=3", "--cpunodebind=4 --interleave=0-3",
        "--preferred=2"}) {
    const nm::Policy p = nm::parse_numactl(spec);
    std::printf("policy \"%s\" -> %s\n", spec,
                nm::to_numactl_string(p).c_str());
  }

  // Now the punchline: measure the calibrated host with STREAM and try to
  // recover its wiring.
  fabric::Machine machine{fabric::dl585_profile()};
  nm::Host nmhost{machine};
  const auto bw = mem::stream_matrix(nmhost, mem::StreamConfig{});
  std::printf("\nmeasured STREAM matrix: asymmetry index %.3f\n",
              model::asymmetry_index(bw));
  for (const auto& fit : model::fit_magny_cours_variants(bw)) {
    std::printf("  candidate %-20s explains %.0f%% of orderings\n",
                fit.variant_name.c_str(), fit.score * 100.0);
  }
  std::printf("\ninferred 'fastest remote neighbor' edges:");
  for (const auto& [a, b] : model::infer_adjacency(bw)) {
    std::printf(" %d-%d%s", a, b,
                host.adjacent(a, b) ? "" : "(!)");
  }
  std::printf("\n(!) = contradicts the nominal wiring: hop distance cannot\n"
              "model this host; use the iomodel methodology instead.\n");
  return 0;
}
