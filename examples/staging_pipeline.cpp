// A staging pipeline — the canonical data-transfer-node inner loop:
// receive a dataset from the 40 GbE network while simultaneously writing
// it out to the SSDs. Both devices hang off node 7, so the two halves of
// the pipeline contend for the same fabric paths, memory controllers and
// CPUs; the binding choice decides the end-to-end rate.
//
// The pipeline rate is min(receive rate, flush rate) and the best binding
// is NOT obvious: the receive side wants a strong 7->i path, the flush
// side a strong i->7 path, and those are different node sets on this host
// (the directional asymmetry of §IV-A).
#include <algorithm>
#include <cstdio>

#include "numaio.h"

int main() {
  using namespace numaio;
  io::Testbed tb = io::Testbed::dl585();
  io::FioRunner fio(tb.host());

  std::printf("staging pipeline: tcp_recv (network -> memory on node i)\n"
              "                + ssd_write (memory on node i -> flash)\n\n");
  std::printf("%-8s %10s %10s %12s\n", "binding", "recv Gbps", "flush Gbps",
              "pipeline");

  double best_rate = 0.0;
  topo::NodeId best_node = 0;
  for (topo::NodeId node = 0; node < 8; ++node) {
    io::FioJob recv;
    recv.devices = {&tb.nic()};
    recv.engine = io::kTcpRecv;
    recv.cpu_node = node;
    recv.num_streams = 4;
    io::FioJob flush;
    flush.devices = tb.ssds();
    flush.engine = io::kSsdWrite;
    flush.cpu_node = node;
    flush.num_streams = 4;
    const auto results = fio.run_concurrent({recv, flush});
    const double pipeline =
        std::min(results[0].aggregate, results[1].aggregate);
    std::printf("node%-4d %10.2f %10.2f %12.2f\n", node,
                results[0].aggregate, results[1].aggregate, pipeline);
    if (pipeline > best_rate) {
      best_rate = pipeline;
      best_node = node;
    }
  }
  std::printf("\nbest staging binding: node %d at %.2f Gbps end-to-end\n",
              best_node, best_rate);
  std::printf(
      "node 7 pays for its own interrupts; {2,3} choke the flush leg\n"
      "(weak i->7 direction); node 4 chokes the receive leg (weak 7->4).\n"
      "The staging buffer wants a node strong in BOTH directions -- the\n"
      "read and write models of Fig 10 jointly identify it.\n");
  return 0;
}
