
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/numaio_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_asymmetry.cpp" "tests/CMakeFiles/numaio_tests.dir/test_asymmetry.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_asymmetry.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/numaio_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_calibration.cpp" "tests/CMakeFiles/numaio_tests.dir/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_calibration.cpp.o.d"
  "/root/repo/tests/test_characterize.cpp" "tests/CMakeFiles/numaio_tests.dir/test_characterize.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_characterize.cpp.o.d"
  "/root/repo/tests/test_classify.cpp" "tests/CMakeFiles/numaio_tests.dir/test_classify.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_classify.cpp.o.d"
  "/root/repo/tests/test_copy.cpp" "tests/CMakeFiles/numaio_tests.dir/test_copy.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_copy.cpp.o.d"
  "/root/repo/tests/test_cores.cpp" "tests/CMakeFiles/numaio_tests.dir/test_cores.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_cores.cpp.o.d"
  "/root/repo/tests/test_crossval.cpp" "tests/CMakeFiles/numaio_tests.dir/test_crossval.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_crossval.cpp.o.d"
  "/root/repo/tests/test_device.cpp" "tests/CMakeFiles/numaio_tests.dir/test_device.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_device.cpp.o.d"
  "/root/repo/tests/test_diagnose.cpp" "tests/CMakeFiles/numaio_tests.dir/test_diagnose.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_diagnose.cpp.o.d"
  "/root/repo/tests/test_event_engine.cpp" "tests/CMakeFiles/numaio_tests.dir/test_event_engine.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_event_engine.cpp.o.d"
  "/root/repo/tests/test_fio.cpp" "tests/CMakeFiles/numaio_tests.dir/test_fio.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_fio.cpp.o.d"
  "/root/repo/tests/test_flow_solver.cpp" "tests/CMakeFiles/numaio_tests.dir/test_flow_solver.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_flow_solver.cpp.o.d"
  "/root/repo/tests/test_flow_solver_property.cpp" "tests/CMakeFiles/numaio_tests.dir/test_flow_solver_property.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_flow_solver_property.cpp.o.d"
  "/root/repo/tests/test_fluid_sim.cpp" "tests/CMakeFiles/numaio_tests.dir/test_fluid_sim.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_fluid_sim.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/numaio_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_host.cpp" "tests/CMakeFiles/numaio_tests.dir/test_host.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_host.cpp.o.d"
  "/root/repo/tests/test_hostpair.cpp" "tests/CMakeFiles/numaio_tests.dir/test_hostpair.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_hostpair.cpp.o.d"
  "/root/repo/tests/test_inference.cpp" "tests/CMakeFiles/numaio_tests.dir/test_inference.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_inference.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/numaio_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_interleave_io.cpp" "tests/CMakeFiles/numaio_tests.dir/test_interleave_io.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_interleave_io.cpp.o.d"
  "/root/repo/tests/test_iomode.cpp" "tests/CMakeFiles/numaio_tests.dir/test_iomode.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_iomode.cpp.o.d"
  "/root/repo/tests/test_iomodel.cpp" "tests/CMakeFiles/numaio_tests.dir/test_iomodel.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_iomodel.cpp.o.d"
  "/root/repo/tests/test_jobfile.cpp" "tests/CMakeFiles/numaio_tests.dir/test_jobfile.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_jobfile.cpp.o.d"
  "/root/repo/tests/test_latency.cpp" "tests/CMakeFiles/numaio_tests.dir/test_latency.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_latency.cpp.o.d"
  "/root/repo/tests/test_link_contention.cpp" "tests/CMakeFiles/numaio_tests.dir/test_link_contention.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_link_contention.cpp.o.d"
  "/root/repo/tests/test_machine.cpp" "tests/CMakeFiles/numaio_tests.dir/test_machine.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_machine.cpp.o.d"
  "/root/repo/tests/test_membench.cpp" "tests/CMakeFiles/numaio_tests.dir/test_membench.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_membench.cpp.o.d"
  "/root/repo/tests/test_mitigate.cpp" "tests/CMakeFiles/numaio_tests.dir/test_mitigate.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_mitigate.cpp.o.d"
  "/root/repo/tests/test_numademo.cpp" "tests/CMakeFiles/numaio_tests.dir/test_numademo.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_numademo.cpp.o.d"
  "/root/repo/tests/test_online.cpp" "tests/CMakeFiles/numaio_tests.dir/test_online.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_online.cpp.o.d"
  "/root/repo/tests/test_parser_robustness.cpp" "tests/CMakeFiles/numaio_tests.dir/test_parser_robustness.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_parser_robustness.cpp.o.d"
  "/root/repo/tests/test_path_matrix.cpp" "tests/CMakeFiles/numaio_tests.dir/test_path_matrix.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_path_matrix.cpp.o.d"
  "/root/repo/tests/test_policy.cpp" "tests/CMakeFiles/numaio_tests.dir/test_policy.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_policy.cpp.o.d"
  "/root/repo/tests/test_predictor.cpp" "tests/CMakeFiles/numaio_tests.dir/test_predictor.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_predictor.cpp.o.d"
  "/root/repo/tests/test_rate_trace.cpp" "tests/CMakeFiles/numaio_tests.dir/test_rate_trace.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_rate_trace.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/numaio_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/numaio_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/numaio_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/numaio_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_slit.cpp" "tests/CMakeFiles/numaio_tests.dir/test_slit.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_slit.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/numaio_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_stream.cpp" "tests/CMakeFiles/numaio_tests.dir/test_stream.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_stream.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/numaio_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/numaio_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_units.cpp" "tests/CMakeFiles/numaio_tests.dir/test_units.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_units.cpp.o.d"
  "/root/repo/tests/test_validate.cpp" "tests/CMakeFiles/numaio_tests.dir/test_validate.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_validate.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/numaio_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/numaio_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/numaio_model.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/numaio_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/numaio_io.dir/DependInfo.cmake"
  "/root/repo/build/src/nm/CMakeFiles/numaio_nm.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/numaio_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/numaio_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/numaio_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
