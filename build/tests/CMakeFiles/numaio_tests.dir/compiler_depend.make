# Empty compiler generated dependencies file for numaio_tests.
# This may be replaced when dependencies are built.
