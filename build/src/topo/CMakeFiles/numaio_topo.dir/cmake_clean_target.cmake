file(REMOVE_RECURSE
  "libnumaio_topo.a"
)
