# Empty dependencies file for numaio_topo.
# This may be replaced when dependencies are built.
