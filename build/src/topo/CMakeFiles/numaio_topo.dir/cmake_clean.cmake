file(REMOVE_RECURSE
  "CMakeFiles/numaio_topo.dir/latency.cpp.o"
  "CMakeFiles/numaio_topo.dir/latency.cpp.o.d"
  "CMakeFiles/numaio_topo.dir/presets.cpp.o"
  "CMakeFiles/numaio_topo.dir/presets.cpp.o.d"
  "CMakeFiles/numaio_topo.dir/routing.cpp.o"
  "CMakeFiles/numaio_topo.dir/routing.cpp.o.d"
  "CMakeFiles/numaio_topo.dir/topology.cpp.o"
  "CMakeFiles/numaio_topo.dir/topology.cpp.o.d"
  "libnumaio_topo.a"
  "libnumaio_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numaio_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
