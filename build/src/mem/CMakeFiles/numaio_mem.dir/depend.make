# Empty dependencies file for numaio_mem.
# This may be replaced when dependencies are built.
