file(REMOVE_RECURSE
  "libnumaio_mem.a"
)
