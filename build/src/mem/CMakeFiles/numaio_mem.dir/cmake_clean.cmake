file(REMOVE_RECURSE
  "CMakeFiles/numaio_mem.dir/copy.cpp.o"
  "CMakeFiles/numaio_mem.dir/copy.cpp.o.d"
  "CMakeFiles/numaio_mem.dir/membench.cpp.o"
  "CMakeFiles/numaio_mem.dir/membench.cpp.o.d"
  "CMakeFiles/numaio_mem.dir/numademo.cpp.o"
  "CMakeFiles/numaio_mem.dir/numademo.cpp.o.d"
  "CMakeFiles/numaio_mem.dir/stream.cpp.o"
  "CMakeFiles/numaio_mem.dir/stream.cpp.o.d"
  "libnumaio_mem.a"
  "libnumaio_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numaio_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
