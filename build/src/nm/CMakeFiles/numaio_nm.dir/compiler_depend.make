# Empty compiler generated dependencies file for numaio_nm.
# This may be replaced when dependencies are built.
