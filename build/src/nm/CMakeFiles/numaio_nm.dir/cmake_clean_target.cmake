file(REMOVE_RECURSE
  "libnumaio_nm.a"
)
