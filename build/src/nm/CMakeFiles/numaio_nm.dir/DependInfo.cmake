
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nm/cores.cpp" "src/nm/CMakeFiles/numaio_nm.dir/cores.cpp.o" "gcc" "src/nm/CMakeFiles/numaio_nm.dir/cores.cpp.o.d"
  "/root/repo/src/nm/host.cpp" "src/nm/CMakeFiles/numaio_nm.dir/host.cpp.o" "gcc" "src/nm/CMakeFiles/numaio_nm.dir/host.cpp.o.d"
  "/root/repo/src/nm/hwloc_view.cpp" "src/nm/CMakeFiles/numaio_nm.dir/hwloc_view.cpp.o" "gcc" "src/nm/CMakeFiles/numaio_nm.dir/hwloc_view.cpp.o.d"
  "/root/repo/src/nm/numastat.cpp" "src/nm/CMakeFiles/numaio_nm.dir/numastat.cpp.o" "gcc" "src/nm/CMakeFiles/numaio_nm.dir/numastat.cpp.o.d"
  "/root/repo/src/nm/policy.cpp" "src/nm/CMakeFiles/numaio_nm.dir/policy.cpp.o" "gcc" "src/nm/CMakeFiles/numaio_nm.dir/policy.cpp.o.d"
  "/root/repo/src/nm/slit.cpp" "src/nm/CMakeFiles/numaio_nm.dir/slit.cpp.o" "gcc" "src/nm/CMakeFiles/numaio_nm.dir/slit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/numaio_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/numaio_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/numaio_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
