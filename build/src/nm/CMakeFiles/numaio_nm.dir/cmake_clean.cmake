file(REMOVE_RECURSE
  "CMakeFiles/numaio_nm.dir/cores.cpp.o"
  "CMakeFiles/numaio_nm.dir/cores.cpp.o.d"
  "CMakeFiles/numaio_nm.dir/host.cpp.o"
  "CMakeFiles/numaio_nm.dir/host.cpp.o.d"
  "CMakeFiles/numaio_nm.dir/hwloc_view.cpp.o"
  "CMakeFiles/numaio_nm.dir/hwloc_view.cpp.o.d"
  "CMakeFiles/numaio_nm.dir/numastat.cpp.o"
  "CMakeFiles/numaio_nm.dir/numastat.cpp.o.d"
  "CMakeFiles/numaio_nm.dir/policy.cpp.o"
  "CMakeFiles/numaio_nm.dir/policy.cpp.o.d"
  "CMakeFiles/numaio_nm.dir/slit.cpp.o"
  "CMakeFiles/numaio_nm.dir/slit.cpp.o.d"
  "libnumaio_nm.a"
  "libnumaio_nm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numaio_nm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
