
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/analysis.cpp" "src/model/CMakeFiles/numaio_model.dir/analysis.cpp.o" "gcc" "src/model/CMakeFiles/numaio_model.dir/analysis.cpp.o.d"
  "/root/repo/src/model/asymmetry.cpp" "src/model/CMakeFiles/numaio_model.dir/asymmetry.cpp.o" "gcc" "src/model/CMakeFiles/numaio_model.dir/asymmetry.cpp.o.d"
  "/root/repo/src/model/baselines.cpp" "src/model/CMakeFiles/numaio_model.dir/baselines.cpp.o" "gcc" "src/model/CMakeFiles/numaio_model.dir/baselines.cpp.o.d"
  "/root/repo/src/model/characterize.cpp" "src/model/CMakeFiles/numaio_model.dir/characterize.cpp.o" "gcc" "src/model/CMakeFiles/numaio_model.dir/characterize.cpp.o.d"
  "/root/repo/src/model/classify.cpp" "src/model/CMakeFiles/numaio_model.dir/classify.cpp.o" "gcc" "src/model/CMakeFiles/numaio_model.dir/classify.cpp.o.d"
  "/root/repo/src/model/crossval.cpp" "src/model/CMakeFiles/numaio_model.dir/crossval.cpp.o" "gcc" "src/model/CMakeFiles/numaio_model.dir/crossval.cpp.o.d"
  "/root/repo/src/model/inference.cpp" "src/model/CMakeFiles/numaio_model.dir/inference.cpp.o" "gcc" "src/model/CMakeFiles/numaio_model.dir/inference.cpp.o.d"
  "/root/repo/src/model/iomodel.cpp" "src/model/CMakeFiles/numaio_model.dir/iomodel.cpp.o" "gcc" "src/model/CMakeFiles/numaio_model.dir/iomodel.cpp.o.d"
  "/root/repo/src/model/mitigate.cpp" "src/model/CMakeFiles/numaio_model.dir/mitigate.cpp.o" "gcc" "src/model/CMakeFiles/numaio_model.dir/mitigate.cpp.o.d"
  "/root/repo/src/model/online.cpp" "src/model/CMakeFiles/numaio_model.dir/online.cpp.o" "gcc" "src/model/CMakeFiles/numaio_model.dir/online.cpp.o.d"
  "/root/repo/src/model/predictor.cpp" "src/model/CMakeFiles/numaio_model.dir/predictor.cpp.o" "gcc" "src/model/CMakeFiles/numaio_model.dir/predictor.cpp.o.d"
  "/root/repo/src/model/report.cpp" "src/model/CMakeFiles/numaio_model.dir/report.cpp.o" "gcc" "src/model/CMakeFiles/numaio_model.dir/report.cpp.o.d"
  "/root/repo/src/model/scheduler.cpp" "src/model/CMakeFiles/numaio_model.dir/scheduler.cpp.o" "gcc" "src/model/CMakeFiles/numaio_model.dir/scheduler.cpp.o.d"
  "/root/repo/src/model/validate.cpp" "src/model/CMakeFiles/numaio_model.dir/validate.cpp.o" "gcc" "src/model/CMakeFiles/numaio_model.dir/validate.cpp.o.d"
  "/root/repo/src/model/workload.cpp" "src/model/CMakeFiles/numaio_model.dir/workload.cpp.o" "gcc" "src/model/CMakeFiles/numaio_model.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/numaio_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/numaio_io.dir/DependInfo.cmake"
  "/root/repo/build/src/nm/CMakeFiles/numaio_nm.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/numaio_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/numaio_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/numaio_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
