file(REMOVE_RECURSE
  "libnumaio_model.a"
)
