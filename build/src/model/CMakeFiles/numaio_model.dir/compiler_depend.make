# Empty compiler generated dependencies file for numaio_model.
# This may be replaced when dependencies are built.
