file(REMOVE_RECURSE
  "CMakeFiles/numaio_model.dir/analysis.cpp.o"
  "CMakeFiles/numaio_model.dir/analysis.cpp.o.d"
  "CMakeFiles/numaio_model.dir/asymmetry.cpp.o"
  "CMakeFiles/numaio_model.dir/asymmetry.cpp.o.d"
  "CMakeFiles/numaio_model.dir/baselines.cpp.o"
  "CMakeFiles/numaio_model.dir/baselines.cpp.o.d"
  "CMakeFiles/numaio_model.dir/characterize.cpp.o"
  "CMakeFiles/numaio_model.dir/characterize.cpp.o.d"
  "CMakeFiles/numaio_model.dir/classify.cpp.o"
  "CMakeFiles/numaio_model.dir/classify.cpp.o.d"
  "CMakeFiles/numaio_model.dir/crossval.cpp.o"
  "CMakeFiles/numaio_model.dir/crossval.cpp.o.d"
  "CMakeFiles/numaio_model.dir/inference.cpp.o"
  "CMakeFiles/numaio_model.dir/inference.cpp.o.d"
  "CMakeFiles/numaio_model.dir/iomodel.cpp.o"
  "CMakeFiles/numaio_model.dir/iomodel.cpp.o.d"
  "CMakeFiles/numaio_model.dir/mitigate.cpp.o"
  "CMakeFiles/numaio_model.dir/mitigate.cpp.o.d"
  "CMakeFiles/numaio_model.dir/online.cpp.o"
  "CMakeFiles/numaio_model.dir/online.cpp.o.d"
  "CMakeFiles/numaio_model.dir/predictor.cpp.o"
  "CMakeFiles/numaio_model.dir/predictor.cpp.o.d"
  "CMakeFiles/numaio_model.dir/report.cpp.o"
  "CMakeFiles/numaio_model.dir/report.cpp.o.d"
  "CMakeFiles/numaio_model.dir/scheduler.cpp.o"
  "CMakeFiles/numaio_model.dir/scheduler.cpp.o.d"
  "CMakeFiles/numaio_model.dir/validate.cpp.o"
  "CMakeFiles/numaio_model.dir/validate.cpp.o.d"
  "CMakeFiles/numaio_model.dir/workload.cpp.o"
  "CMakeFiles/numaio_model.dir/workload.cpp.o.d"
  "libnumaio_model.a"
  "libnumaio_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numaio_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
