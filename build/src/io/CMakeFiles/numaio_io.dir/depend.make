# Empty dependencies file for numaio_io.
# This may be replaced when dependencies are built.
