file(REMOVE_RECURSE
  "CMakeFiles/numaio_io.dir/device.cpp.o"
  "CMakeFiles/numaio_io.dir/device.cpp.o.d"
  "CMakeFiles/numaio_io.dir/fio.cpp.o"
  "CMakeFiles/numaio_io.dir/fio.cpp.o.d"
  "CMakeFiles/numaio_io.dir/hostpair.cpp.o"
  "CMakeFiles/numaio_io.dir/hostpair.cpp.o.d"
  "CMakeFiles/numaio_io.dir/jobfile.cpp.o"
  "CMakeFiles/numaio_io.dir/jobfile.cpp.o.d"
  "CMakeFiles/numaio_io.dir/nic.cpp.o"
  "CMakeFiles/numaio_io.dir/nic.cpp.o.d"
  "CMakeFiles/numaio_io.dir/ssd.cpp.o"
  "CMakeFiles/numaio_io.dir/ssd.cpp.o.d"
  "CMakeFiles/numaio_io.dir/testbed.cpp.o"
  "CMakeFiles/numaio_io.dir/testbed.cpp.o.d"
  "CMakeFiles/numaio_io.dir/trace.cpp.o"
  "CMakeFiles/numaio_io.dir/trace.cpp.o.d"
  "libnumaio_io.a"
  "libnumaio_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numaio_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
