file(REMOVE_RECURSE
  "libnumaio_io.a"
)
