
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/device.cpp" "src/io/CMakeFiles/numaio_io.dir/device.cpp.o" "gcc" "src/io/CMakeFiles/numaio_io.dir/device.cpp.o.d"
  "/root/repo/src/io/fio.cpp" "src/io/CMakeFiles/numaio_io.dir/fio.cpp.o" "gcc" "src/io/CMakeFiles/numaio_io.dir/fio.cpp.o.d"
  "/root/repo/src/io/hostpair.cpp" "src/io/CMakeFiles/numaio_io.dir/hostpair.cpp.o" "gcc" "src/io/CMakeFiles/numaio_io.dir/hostpair.cpp.o.d"
  "/root/repo/src/io/jobfile.cpp" "src/io/CMakeFiles/numaio_io.dir/jobfile.cpp.o" "gcc" "src/io/CMakeFiles/numaio_io.dir/jobfile.cpp.o.d"
  "/root/repo/src/io/nic.cpp" "src/io/CMakeFiles/numaio_io.dir/nic.cpp.o" "gcc" "src/io/CMakeFiles/numaio_io.dir/nic.cpp.o.d"
  "/root/repo/src/io/ssd.cpp" "src/io/CMakeFiles/numaio_io.dir/ssd.cpp.o" "gcc" "src/io/CMakeFiles/numaio_io.dir/ssd.cpp.o.d"
  "/root/repo/src/io/testbed.cpp" "src/io/CMakeFiles/numaio_io.dir/testbed.cpp.o" "gcc" "src/io/CMakeFiles/numaio_io.dir/testbed.cpp.o.d"
  "/root/repo/src/io/trace.cpp" "src/io/CMakeFiles/numaio_io.dir/trace.cpp.o" "gcc" "src/io/CMakeFiles/numaio_io.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nm/CMakeFiles/numaio_nm.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/numaio_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/numaio_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/numaio_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
