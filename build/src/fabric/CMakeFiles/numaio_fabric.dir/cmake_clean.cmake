file(REMOVE_RECURSE
  "CMakeFiles/numaio_fabric.dir/calibration.cpp.o"
  "CMakeFiles/numaio_fabric.dir/calibration.cpp.o.d"
  "CMakeFiles/numaio_fabric.dir/machine.cpp.o"
  "CMakeFiles/numaio_fabric.dir/machine.cpp.o.d"
  "CMakeFiles/numaio_fabric.dir/path_matrix.cpp.o"
  "CMakeFiles/numaio_fabric.dir/path_matrix.cpp.o.d"
  "libnumaio_fabric.a"
  "libnumaio_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numaio_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
