
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/calibration.cpp" "src/fabric/CMakeFiles/numaio_fabric.dir/calibration.cpp.o" "gcc" "src/fabric/CMakeFiles/numaio_fabric.dir/calibration.cpp.o.d"
  "/root/repo/src/fabric/machine.cpp" "src/fabric/CMakeFiles/numaio_fabric.dir/machine.cpp.o" "gcc" "src/fabric/CMakeFiles/numaio_fabric.dir/machine.cpp.o.d"
  "/root/repo/src/fabric/path_matrix.cpp" "src/fabric/CMakeFiles/numaio_fabric.dir/path_matrix.cpp.o" "gcc" "src/fabric/CMakeFiles/numaio_fabric.dir/path_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/numaio_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/numaio_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
