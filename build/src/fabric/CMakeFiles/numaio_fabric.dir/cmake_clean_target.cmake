file(REMOVE_RECURSE
  "libnumaio_fabric.a"
)
