# Empty compiler generated dependencies file for numaio_fabric.
# This may be replaced when dependencies are built.
