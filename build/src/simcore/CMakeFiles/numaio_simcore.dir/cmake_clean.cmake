file(REMOVE_RECURSE
  "CMakeFiles/numaio_simcore.dir/event_engine.cpp.o"
  "CMakeFiles/numaio_simcore.dir/event_engine.cpp.o.d"
  "CMakeFiles/numaio_simcore.dir/flow_solver.cpp.o"
  "CMakeFiles/numaio_simcore.dir/flow_solver.cpp.o.d"
  "CMakeFiles/numaio_simcore.dir/fluid_sim.cpp.o"
  "CMakeFiles/numaio_simcore.dir/fluid_sim.cpp.o.d"
  "CMakeFiles/numaio_simcore.dir/rng.cpp.o"
  "CMakeFiles/numaio_simcore.dir/rng.cpp.o.d"
  "CMakeFiles/numaio_simcore.dir/stats.cpp.o"
  "CMakeFiles/numaio_simcore.dir/stats.cpp.o.d"
  "CMakeFiles/numaio_simcore.dir/units.cpp.o"
  "CMakeFiles/numaio_simcore.dir/units.cpp.o.d"
  "libnumaio_simcore.a"
  "libnumaio_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numaio_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
