# Empty dependencies file for numaio_simcore.
# This may be replaced when dependencies are built.
