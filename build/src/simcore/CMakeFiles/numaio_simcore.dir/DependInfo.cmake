
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcore/event_engine.cpp" "src/simcore/CMakeFiles/numaio_simcore.dir/event_engine.cpp.o" "gcc" "src/simcore/CMakeFiles/numaio_simcore.dir/event_engine.cpp.o.d"
  "/root/repo/src/simcore/flow_solver.cpp" "src/simcore/CMakeFiles/numaio_simcore.dir/flow_solver.cpp.o" "gcc" "src/simcore/CMakeFiles/numaio_simcore.dir/flow_solver.cpp.o.d"
  "/root/repo/src/simcore/fluid_sim.cpp" "src/simcore/CMakeFiles/numaio_simcore.dir/fluid_sim.cpp.o" "gcc" "src/simcore/CMakeFiles/numaio_simcore.dir/fluid_sim.cpp.o.d"
  "/root/repo/src/simcore/rng.cpp" "src/simcore/CMakeFiles/numaio_simcore.dir/rng.cpp.o" "gcc" "src/simcore/CMakeFiles/numaio_simcore.dir/rng.cpp.o.d"
  "/root/repo/src/simcore/stats.cpp" "src/simcore/CMakeFiles/numaio_simcore.dir/stats.cpp.o" "gcc" "src/simcore/CMakeFiles/numaio_simcore.dir/stats.cpp.o.d"
  "/root/repo/src/simcore/units.cpp" "src/simcore/CMakeFiles/numaio_simcore.dir/units.cpp.o" "gcc" "src/simcore/CMakeFiles/numaio_simcore.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
