file(REMOVE_RECURSE
  "libnumaio_simcore.a"
)
