file(REMOVE_RECURSE
  "CMakeFiles/scheduler_demo.dir/scheduler_demo.cpp.o"
  "CMakeFiles/scheduler_demo.dir/scheduler_demo.cpp.o.d"
  "scheduler_demo"
  "scheduler_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
