# Empty dependencies file for data_transfer_node.
# This may be replaced when dependencies are built.
