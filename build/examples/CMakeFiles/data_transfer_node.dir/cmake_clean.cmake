file(REMOVE_RECURSE
  "CMakeFiles/data_transfer_node.dir/data_transfer_node.cpp.o"
  "CMakeFiles/data_transfer_node.dir/data_transfer_node.cpp.o.d"
  "data_transfer_node"
  "data_transfer_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_transfer_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
