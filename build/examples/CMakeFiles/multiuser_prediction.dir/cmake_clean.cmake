file(REMOVE_RECURSE
  "CMakeFiles/multiuser_prediction.dir/multiuser_prediction.cpp.o"
  "CMakeFiles/multiuser_prediction.dir/multiuser_prediction.cpp.o.d"
  "multiuser_prediction"
  "multiuser_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiuser_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
