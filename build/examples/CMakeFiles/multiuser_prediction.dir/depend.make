# Empty dependencies file for multiuser_prediction.
# This may be replaced when dependencies are built.
