# Empty compiler generated dependencies file for staging_pipeline.
# This may be replaced when dependencies are built.
