file(REMOVE_RECURSE
  "CMakeFiles/staging_pipeline.dir/staging_pipeline.cpp.o"
  "CMakeFiles/staging_pipeline.dir/staging_pipeline.cpp.o.d"
  "staging_pipeline"
  "staging_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staging_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
