# Empty dependencies file for ops_workflow.
# This may be replaced when dependencies are built.
