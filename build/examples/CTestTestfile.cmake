# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;8;numaio_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scheduler_demo "/root/repo/build/examples/scheduler_demo")
set_tests_properties(example_scheduler_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;9;numaio_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multiuser_prediction "/root/repo/build/examples/multiuser_prediction")
set_tests_properties(example_multiuser_prediction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;10;numaio_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_topology_explorer "/root/repo/build/examples/topology_explorer")
set_tests_properties(example_topology_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;11;numaio_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_machine "/root/repo/build/examples/custom_machine")
set_tests_properties(example_custom_machine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;12;numaio_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_data_transfer_node "/root/repo/build/examples/data_transfer_node")
set_tests_properties(example_data_transfer_node PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;13;numaio_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_staging_pipeline "/root/repo/build/examples/staging_pipeline")
set_tests_properties(example_staging_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;14;numaio_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ops_workflow "/root/repo/build/examples/ops_workflow")
set_tests_properties(example_ops_workflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;15;numaio_example;/root/repo/examples/CMakeLists.txt;0;")
