file(REMOVE_RECURSE
  "CMakeFiles/bench_peer_binding.dir/bench_peer_binding.cpp.o"
  "CMakeFiles/bench_peer_binding.dir/bench_peer_binding.cpp.o.d"
  "bench_peer_binding"
  "bench_peer_binding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_peer_binding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
