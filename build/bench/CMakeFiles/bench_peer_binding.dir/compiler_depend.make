# Empty compiler generated dependencies file for bench_peer_binding.
# This may be replaced when dependencies are built.
