# Empty dependencies file for bench_hostpair_duplex.
# This may be replaced when dependencies are built.
