file(REMOVE_RECURSE
  "CMakeFiles/bench_hostpair_duplex.dir/bench_hostpair_duplex.cpp.o"
  "CMakeFiles/bench_hostpair_duplex.dir/bench_hostpair_duplex.cpp.o.d"
  "bench_hostpair_duplex"
  "bench_hostpair_duplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hostpair_duplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
