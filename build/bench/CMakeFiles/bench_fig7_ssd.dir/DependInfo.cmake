
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_ssd.cpp" "bench/CMakeFiles/bench_fig7_ssd.dir/bench_fig7_ssd.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_ssd.dir/bench_fig7_ssd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/numaio_model.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/numaio_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/numaio_io.dir/DependInfo.cmake"
  "/root/repo/build/src/nm/CMakeFiles/numaio_nm.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/numaio_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/numaio_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/numaio_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
