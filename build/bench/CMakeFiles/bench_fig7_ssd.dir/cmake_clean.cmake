file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ssd.dir/bench_fig7_ssd.cpp.o"
  "CMakeFiles/bench_fig7_ssd.dir/bench_fig7_ssd.cpp.o.d"
  "bench_fig7_ssd"
  "bench_fig7_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
