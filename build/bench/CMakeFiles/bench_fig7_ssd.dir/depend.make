# Empty dependencies file for bench_fig7_ssd.
# This may be replaced when dependencies are built.
