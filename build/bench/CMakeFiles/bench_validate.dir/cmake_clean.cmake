file(REMOVE_RECURSE
  "CMakeFiles/bench_validate.dir/bench_validate.cpp.o"
  "CMakeFiles/bench_validate.dir/bench_validate.cpp.o.d"
  "bench_validate"
  "bench_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
