# Empty dependencies file for bench_validate.
# This may be replaced when dependencies are built.
