file(REMOVE_RECURSE
  "CMakeFiles/bench_online_policies.dir/bench_online_policies.cpp.o"
  "CMakeFiles/bench_online_policies.dir/bench_online_policies.cpp.o.d"
  "bench_online_policies"
  "bench_online_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
