# Empty compiler generated dependencies file for bench_online_policies.
# This may be replaced when dependencies are built.
