# Empty dependencies file for bench_numademo.
# This may be replaced when dependencies are built.
