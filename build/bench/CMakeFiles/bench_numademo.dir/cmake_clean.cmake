file(REMOVE_RECURSE
  "CMakeFiles/bench_numademo.dir/bench_numademo.cpp.o"
  "CMakeFiles/bench_numademo.dir/bench_numademo.cpp.o.d"
  "bench_numademo"
  "bench_numademo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_numademo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
