file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_write_model.dir/bench_table4_write_model.cpp.o"
  "CMakeFiles/bench_table4_write_model.dir/bench_table4_write_model.cpp.o.d"
  "bench_table4_write_model"
  "bench_table4_write_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_write_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
