# Empty dependencies file for bench_table4_write_model.
# This may be replaced when dependencies are built.
