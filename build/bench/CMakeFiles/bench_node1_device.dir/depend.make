# Empty dependencies file for bench_node1_device.
# This may be replaced when dependencies are built.
