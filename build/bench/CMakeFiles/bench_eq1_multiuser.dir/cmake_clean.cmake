file(REMOVE_RECURSE
  "CMakeFiles/bench_eq1_multiuser.dir/bench_eq1_multiuser.cpp.o"
  "CMakeFiles/bench_eq1_multiuser.dir/bench_eq1_multiuser.cpp.o.d"
  "bench_eq1_multiuser"
  "bench_eq1_multiuser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq1_multiuser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
