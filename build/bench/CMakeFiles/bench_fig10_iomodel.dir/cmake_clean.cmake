file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_iomodel.dir/bench_fig10_iomodel.cpp.o"
  "CMakeFiles/bench_fig10_iomodel.dir/bench_fig10_iomodel.cpp.o.d"
  "bench_fig10_iomodel"
  "bench_fig10_iomodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_iomodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
