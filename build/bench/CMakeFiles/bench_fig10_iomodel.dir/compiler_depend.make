# Empty compiler generated dependencies file for bench_fig10_iomodel.
# This may be replaced when dependencies are built.
