# Empty dependencies file for bench_sched_spread.
# This may be replaced when dependencies are built.
