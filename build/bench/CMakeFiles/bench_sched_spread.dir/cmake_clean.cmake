file(REMOVE_RECURSE
  "CMakeFiles/bench_sched_spread.dir/bench_sched_spread.cpp.o"
  "CMakeFiles/bench_sched_spread.dir/bench_sched_spread.cpp.o.d"
  "bench_sched_spread"
  "bench_sched_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sched_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
