file(REMOVE_RECURSE
  "CMakeFiles/bench_stream_kernels.dir/bench_stream_kernels.cpp.o"
  "CMakeFiles/bench_stream_kernels.dir/bench_stream_kernels.cpp.o.d"
  "bench_stream_kernels"
  "bench_stream_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
