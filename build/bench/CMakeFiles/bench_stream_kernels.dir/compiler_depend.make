# Empty compiler generated dependencies file for bench_stream_kernels.
# This may be replaced when dependencies are built.
