# Empty dependencies file for bench_table5_read_model.
# This may be replaced when dependencies are built.
