file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_centric_models.dir/bench_fig4_centric_models.cpp.o"
  "CMakeFiles/bench_fig4_centric_models.dir/bench_fig4_centric_models.cpp.o.d"
  "bench_fig4_centric_models"
  "bench_fig4_centric_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_centric_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
