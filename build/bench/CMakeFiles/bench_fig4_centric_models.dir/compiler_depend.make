# Empty compiler generated dependencies file for bench_fig4_centric_models.
# This may be replaced when dependencies are built.
