file(REMOVE_RECURSE
  "CMakeFiles/bench_hopdist_failure.dir/bench_hopdist_failure.cpp.o"
  "CMakeFiles/bench_hopdist_failure.dir/bench_hopdist_failure.cpp.o.d"
  "bench_hopdist_failure"
  "bench_hopdist_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hopdist_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
