file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_numa_factor.dir/bench_table1_numa_factor.cpp.o"
  "CMakeFiles/bench_table1_numa_factor.dir/bench_table1_numa_factor.cpp.o.d"
  "bench_table1_numa_factor"
  "bench_table1_numa_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_numa_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
