# Empty compiler generated dependencies file for bench_table1_numa_factor.
# This may be replaced when dependencies are built.
