# Empty compiler generated dependencies file for bench_iomode.
# This may be replaced when dependencies are built.
