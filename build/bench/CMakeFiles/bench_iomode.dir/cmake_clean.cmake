file(REMOVE_RECURSE
  "CMakeFiles/bench_iomode.dir/bench_iomode.cpp.o"
  "CMakeFiles/bench_iomode.dir/bench_iomode.cpp.o.d"
  "bench_iomode"
  "bench_iomode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iomode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
