file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_rdma.dir/bench_fig6_rdma.cpp.o"
  "CMakeFiles/bench_fig6_rdma.dir/bench_fig6_rdma.cpp.o.d"
  "bench_fig6_rdma"
  "bench_fig6_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
