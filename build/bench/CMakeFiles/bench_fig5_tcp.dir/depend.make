# Empty dependencies file for bench_fig5_tcp.
# This may be replaced when dependencies are built.
