file(REMOVE_RECURSE
  "CMakeFiles/bench_classify_sensitivity.dir/bench_classify_sensitivity.cpp.o"
  "CMakeFiles/bench_classify_sensitivity.dir/bench_classify_sensitivity.cpp.o.d"
  "bench_classify_sensitivity"
  "bench_classify_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classify_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
