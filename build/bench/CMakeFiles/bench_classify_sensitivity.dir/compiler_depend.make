# Empty compiler generated dependencies file for bench_classify_sensitivity.
# This may be replaced when dependencies are built.
