# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build/tools/numaio_cli" "help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_hardware "/root/repo/build/tools/numaio_cli" "hardware")
set_tests_properties(cli_hardware PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_stream_matrix "/root/repo/build/tools/numaio_cli" "stream-matrix")
set_tests_properties(cli_stream_matrix PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_iomodel_read "/root/repo/build/tools/numaio_cli" "iomodel" "--target" "7" "--direction" "read")
set_tests_properties(cli_iomodel_read PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_iomodel_write "/root/repo/build/tools/numaio_cli" "iomodel" "--target" "3" "--direction" "write")
set_tests_properties(cli_iomodel_write PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_demo "/root/repo/build/tools/numaio_cli" "demo" "--node" "0")
set_tests_properties(cli_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_validate "/root/repo/build/tools/numaio_cli" "validate" "--reps" "5")
set_tests_properties(cli_validate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_asymmetry "/root/repo/build/tools/numaio_cli" "asymmetry" "--min-ratio" "1.3")
set_tests_properties(cli_asymmetry PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_characterize_roundtrip "sh" "-c" "/root/repo/build/tools/numaio_cli characterize --reps 3 --out /root/repo/build/tools/host.model && /root/repo/build/tools/numaio_cli classes --in /root/repo/build/tools/host.model --target 7 --direction read | grep -q 'class 4: 4'")
set_tests_properties(cli_characterize_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_fio "sh" "-c" "printf '[global]\\nioengine=rdma\\nrw=read\\nnumjobs=4\\n[probe]\\ncpunodebind=0\\n' > /root/repo/build/tools/t.fio && /root/repo/build/tools/numaio_cli fio /root/repo/build/tools/t.fio | grep -q '18.297 Gbps'")
set_tests_properties(cli_fio PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_replay "sh" "-c" "printf '0.0,rdma_write,7,8\\n' > /root/repo/build/tools/t.csv && /root/repo/build/tools/numaio_cli replay /root/repo/build/tools/t.csv | grep -q 'replayed 1 requests'")
set_tests_properties(cli_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_command_fails "/root/repo/build/tools/numaio_cli" "bogus")
set_tests_properties(cli_unknown_command_fails PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
