file(REMOVE_RECURSE
  "CMakeFiles/numaio_cli.dir/numaio_cli.cpp.o"
  "CMakeFiles/numaio_cli.dir/numaio_cli.cpp.o.d"
  "numaio_cli"
  "numaio_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numaio_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
