# Empty dependencies file for numaio_cli.
# This may be replaced when dependencies are built.
